#include "stream/stream_object.h"

#include <algorithm>

#include "common/metrics.h"

namespace streamlake::stream {

// ---------------- ScmSliceCache ----------------

const std::vector<StreamRecord>* ScmSliceCache::Get(uint64_t object_id,
                                                    uint64_t slice_seq) {
  // Per-instance hits_/misses_ back the cache's own accessors; the
  // registry counters aggregate across instances for observability.
  static Counter* cache_hits =
      MetricsRegistry::Global().GetCounter("stream.scm_cache.hits");
  static Counter* cache_misses =
      MetricsRegistry::Global().GetCounter("stream.scm_cache.misses");
  MutexLock lock(&mu_);
  auto it = index_.find({object_id, slice_seq});
  if (it == index_.end()) {
    ++misses_;
    cache_misses->Increment();
    return nullptr;
  }
  ++hits_;
  cache_hits->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  if (pmem_ != nullptr) pmem_->ChargeRead(it->second->bytes);
  return &it->second->records;
}

void ScmSliceCache::Put(uint64_t object_id, uint64_t slice_seq,
                        std::vector<StreamRecord> records) {
  MutexLock lock(&mu_);
  Key key{object_id, slice_seq};
  if (index_.count(key)) return;
  Entry entry;
  entry.key = key;
  entry.bytes = 0;
  for (const StreamRecord& r : records) entry.bytes += r.ByteSize();
  entry.records = std::move(records);
  if (pmem_ != nullptr) pmem_->ChargeWrite(entry.bytes);
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

// ---------------- StreamObject ----------------

StreamObject::StreamObject(uint64_t id, storage::PlogStore* plogs,
                           kv::KvStore* index, sim::SimClock* clock,
                           StreamObjectOptions options, ScmSliceCache* cache,
                           ThreadPool* io_pool)
    : id_(id),
      plogs_(plogs),
      index_(index),
      clock_(clock),
      options_(options),
      cache_(cache),
      io_pool_(io_pool),
      quota_epoch_ns_(clock->NowNanos()) {}

namespace {

std::string ObjectMetaKey(uint64_t object_id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "so/%016llu/meta",
                static_cast<unsigned long long>(object_id));
  return buf;
}

void EncodeObjectOptions(const StreamObjectOptions& options, Bytes* dst) {
  dst->push_back(options.redundancy.scheme ==
                         storage::RedundancyConfig::Scheme::kReplication
                     ? 0
                     : 1);
  PutVarint64(dst, options.redundancy.replicas);
  PutVarint64(dst, options.redundancy.ec_data);
  PutVarint64(dst, options.redundancy.ec_parity);
  PutVarint64(dst, options.io_quota_records_per_sec);
  dst->push_back(options.io_aggregation ? 1 : 0);
  PutVarint64(dst, options.records_per_slice);
  dst->push_back(options.use_scm_cache ? 1 : 0);
}

Result<StreamObjectOptions> DecodeObjectOptions(ByteView data) {
  Decoder dec(data);
  StreamObjectOptions options;
  if (dec.Remaining() < 1) return Status::Corruption("object options");
  uint8_t scheme = *dec.position();
  dec.Skip(1);
  uint64_t replicas, ec_data, ec_parity;
  if (!dec.GetVarint(&replicas) || !dec.GetVarint(&ec_data) ||
      !dec.GetVarint(&ec_parity) ||
      !dec.GetVarint(&options.io_quota_records_per_sec)) {
    return Status::Corruption("object options fields");
  }
  options.redundancy =
      scheme == 0 ? storage::RedundancyConfig::Replication(
                        static_cast<int>(replicas))
                  : storage::RedundancyConfig::ErasureCoding(
                        static_cast<int>(ec_data),
                        static_cast<int>(ec_parity));
  if (dec.Remaining() < 1) return Status::Corruption("aggregation flag");
  options.io_aggregation = *dec.position() != 0;
  dec.Skip(1);
  uint64_t per_slice;
  if (!dec.GetVarint(&per_slice)) return Status::Corruption("slice size");
  options.records_per_slice = per_slice;
  if (dec.Remaining() < 1) return Status::Corruption("scm flag");
  options.use_scm_cache = *dec.position() != 0;
  return options;
}

}  // namespace

std::string StreamObject::IndexKey(uint64_t slice_seq) const {
  // Zero-padded so KV range scans return slices in order.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "so/%016llu/slice/%016llu",
                static_cast<unsigned long long>(id_),
                static_cast<unsigned long long>(slice_seq));
  return buf;
}

Status StreamObject::CheckQuotaLocked(size_t incoming) {
  if (options_.io_quota_records_per_sec == 0) return Status::OK();
  uint64_t now = clock_->NowNanos();
  if (now - quota_epoch_ns_ >= sim::kSecond) {
    quota_epoch_ns_ = now;
    quota_consumed_ = 0;
  }
  if (quota_consumed_ + incoming > options_.io_quota_records_per_sec) {
    return Status::QuotaExceeded("stream object " + std::to_string(id_) +
                                 " rate limit");
  }
  quota_consumed_ += incoming;
  return Status::OK();
}

void StreamObject::WaitBatchIdleLocked() {
  while (batch_inflight_) batch_cv_.Wait(&mu_);
}

Result<uint64_t> StreamObject::Append(std::vector<StreamRecord> records) {
  static Counter* append_batches =
      MetricsRegistry::Global().GetCounter("stream.object.append_batches");
  static Counter* append_records =
      MetricsRegistry::Global().GetCounter("stream.object.append_records");
  static Counter* append_bytes =
      MetricsRegistry::Global().GetCounter("stream.object.append_bytes");
  MutexLock lock(&mu_);
  WaitBatchIdleLocked();
  if (destroyed_) return Status::InvalidArgument("stream object destroyed");
  SL_RETURN_NOT_OK(CheckQuotaLocked(records.size()));

  append_batches->Increment();
  uint64_t start_offset = frontier_;
  for (StreamRecord& record : records) {
    // Idempotent writes: drop producer retries ("duplicate messages sent
    // by the producer can be identified").
    if (record.producer_id != 0) {
      auto [it, inserted] =
          producer_last_seq_.emplace(record.producer_id, record.producer_seq);
      if (!inserted) {
        if (record.producer_seq <= it->second) continue;  // duplicate
        it->second = record.producer_seq;
      }
    }
    append_records->Increment();
    append_bytes->Increment(record.key.size() + record.value.size());
    active_.push_back(std::move(record));
    ++frontier_;
    if (active_.size() >= options_.records_per_slice ||
        !options_.io_aggregation) {
      SL_RETURN_NOT_OK(PersistSliceLocked(std::move(active_)));
      active_.clear();
    }
  }
  return start_offset;
}

void StreamObject::RunSliceJob(SliceJob* job) {
  static Counter* slices_persisted =
      MetricsRegistry::Global().GetCounter("stream.object.slices_persisted");
  static Histogram* slice_bytes =
      MetricsRegistry::Global().GetHistogram("stream.object.slice_bytes");
  Bytes encoded;
  EncodeSlice(&encoded, job->records);
  slices_persisted->Increment();
  slice_bytes->Record(encoded.size());
  job->payload_bytes = encoded.size();
  std::string route =
      "so/" + std::to_string(id_) + "/" + std::to_string(job->seq);
  auto address = plogs_->AppendKeyed(ByteView(route), ByteView(encoded));
  if (!address.ok()) {
    job->status = address.status();
    return;
  }
  job->address = *address;
}

// Three phases under explicit lock management (the static analysis cannot
// follow a lock released mid-function; the runtime checker still can):
//   1. mu_ held:    dedupe into active_, carve slice jobs, set inflight.
//   2. mu_ RELEASED: encode + PLog-append every job, fanned out on the
//                    shared I/O pool when available.
//   3. mu_ held:    commit index entries in slice order (or roll back),
//                    clear inflight, wake queued mutators.
Result<uint64_t> StreamObject::AppendBatch(std::vector<StreamRecord> records)
    NO_THREAD_SAFETY_ANALYSIS {
  static Counter* group_appends =
      MetricsRegistry::Global().GetCounter("stream.object.group_appends");
  static Counter* append_records =
      MetricsRegistry::Global().GetCounter("stream.object.append_records");
  static Counter* append_bytes =
      MetricsRegistry::Global().GetCounter("stream.object.append_bytes");

  mu_.Lock();
  WaitBatchIdleLocked();
  if (destroyed_) {
    mu_.Unlock();
    return Status::InvalidArgument("stream object destroyed");
  }
  {
    Status quota = CheckQuotaLocked(records.size());
    if (!quota.ok()) {
      mu_.Unlock();
      return quota;
    }
  }
  group_appends->Increment();
  const uint64_t start_offset = frontier_;
  for (StreamRecord& record : records) {
    if (record.producer_id != 0) {
      auto [it, inserted] =
          producer_last_seq_.emplace(record.producer_id, record.producer_seq);
      if (!inserted) {
        if (record.producer_seq <= it->second) continue;  // duplicate
        it->second = record.producer_seq;
      }
    }
    append_records->Increment();
    append_bytes->Increment(record.key.size() + record.value.size());
    active_.push_back(std::move(record));
    ++frontier_;
  }
  // Carve the whole unpersisted tail into slice jobs. Jobs COPY their
  // records out of active_, which keeps holding them until commit: reads
  // of the in-flight window stay valid, and a failed batch simply leaves
  // everything buffered for a later retry.
  std::vector<SliceJob> jobs;
  const size_t per_slice =
      options_.records_per_slice == 0 ? 1 : options_.records_per_slice;
  for (size_t begin = 0; begin < active_.size(); begin += per_slice) {
    size_t end = std::min(begin + per_slice, active_.size());
    SliceJob job;
    job.seq = next_slice_seq_++;
    job.records.assign(active_.begin() + begin, active_.begin() + end);
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    mu_.Unlock();
    return start_offset;
  }
  batch_inflight_ = true;
  mu_.Unlock();

  // Phase 2: device I/O with no stream lock held. Slices of this batch
  // hash to different PLog shards, so the pool's workers land on
  // different store stripes and genuinely overlap.
  if (io_pool_ != nullptr && jobs.size() > 1) {
    size_t remaining = jobs.size();  // guarded by mu_ below
    for (SliceJob& job : jobs) {
      io_pool_->Submit([this, &job, &remaining] {
        RunSliceJob(&job);
        MutexLock done(&mu_);
        --remaining;
        batch_cv_.NotifyAll();
      });
    }
    mu_.Lock();
    while (remaining > 0) batch_cv_.Wait(&mu_);
  } else {
    for (SliceJob& job : jobs) RunSliceJob(&job);
    mu_.Lock();
  }

  // Phase 3: commit. All-or-nothing across the batch's PLog appends.
  Status failure = Status::OK();
  for (const SliceJob& job : jobs) {
    if (!job.status.ok()) {
      failure = job.status;
      break;
    }
  }
  size_t committed = 0;
  size_t committed_records = 0;
  if (failure.ok()) {
    for (SliceJob& job : jobs) {
      SliceMeta meta;
      meta.seq = job.seq;
      meta.start_offset = persisted_;
      meta.count = static_cast<uint32_t>(job.records.size());
      meta.address = job.address;
      meta.payload_bytes = job.payload_bytes;
      Bytes index_value;
      PutVarint64(&index_value, meta.start_offset);
      PutVarint64(&index_value, meta.count);
      PutVarint64(&index_value, meta.address.shard);
      PutVarint64(&index_value, meta.address.plog_index);
      PutVarint64(&index_value, meta.address.offset);
      failure = index_->Put(IndexKey(meta.seq), BytesToString(index_value));
      if (!failure.ok()) break;
      persisted_ += meta.count;
      committed_records += meta.count;
      if (cache_ != nullptr) {
        cache_->Put(id_, meta.seq, std::move(job.records));
      }
      slices_.push_back(meta);
      ++committed;
    }
  }
  if (failure.ok()) {
    active_.clear();
  } else {
    // Roll back: orphan the PLog appends of every uncommitted slice. The
    // records stay in active_, so nothing is lost — a later Flush or
    // AppendBatch re-persists them under fresh slice seqs.
    for (size_t i = committed; i < jobs.size(); ++i) {
      if (jobs[i].status.ok()) {
        plogs_->MarkGarbage(jobs[i].address, jobs[i].payload_bytes)
            .LogIgnored("batch slice rollback");
      }
    }
    // Committed slices stay; drop their records from the buffered tail.
    active_.erase(active_.begin(),
                  active_.begin() + static_cast<long>(committed_records));
  }
  batch_inflight_ = false;
  batch_cv_.NotifyAll();
  mu_.Unlock();
  if (!failure.ok()) return failure;
  return start_offset;
}

Status StreamObject::PersistSliceLocked(std::vector<StreamRecord> records) {
  if (records.empty()) return Status::OK();
  static Counter* slices_persisted =
      MetricsRegistry::Global().GetCounter("stream.object.slices_persisted");
  static Histogram* slice_bytes =
      MetricsRegistry::Global().GetHistogram("stream.object.slice_bytes");
  Bytes encoded;
  EncodeSlice(&encoded, records);
  slices_persisted->Increment();
  slice_bytes->Record(encoded.size());

  SliceMeta meta;
  meta.seq = next_slice_seq_++;
  meta.start_offset = persisted_;
  meta.count = static_cast<uint32_t>(records.size());
  meta.payload_bytes = encoded.size();
  std::string route =
      "so/" + std::to_string(id_) + "/" + std::to_string(meta.seq);
  SL_ASSIGN_OR_RETURN(meta.address,
                      plogs_->AppendKeyed(ByteView(route), ByteView(encoded)));

  // Durable slice index ("we use key-value databases to serve as indexes
  // for PLogs for fast record lookup").
  Bytes index_value;
  PutVarint64(&index_value, meta.start_offset);
  PutVarint64(&index_value, meta.count);
  PutVarint64(&index_value, meta.address.shard);
  PutVarint64(&index_value, meta.address.plog_index);
  PutVarint64(&index_value, meta.address.offset);
  Status put = index_->Put(IndexKey(meta.seq), BytesToString(index_value));
  if (!put.ok()) {
    // Roll back: orphan the PLog append so the slice never half-exists
    // (payload durable but unreachable through the index); the producer
    // retry then re-persists under a fresh slice seq.
    plogs_->MarkGarbage(meta.address, meta.payload_bytes)
        .LogIgnored("slice index rollback");
    return put;
  }

  persisted_ += records.size();
  if (cache_ != nullptr) {
    cache_->Put(id_, meta.seq, std::move(records));
  }
  slices_.push_back(meta);
  return Status::OK();
}

Result<std::vector<StreamRecord>> StreamObject::Read(
    uint64_t offset, size_t max_records) const {
  static Counter* read_ops =
      MetricsRegistry::Global().GetCounter("stream.object.read_ops");
  static Counter* read_records =
      MetricsRegistry::Global().GetCounter("stream.object.read_records");
  read_ops->Increment();
  MutexLock lock(&mu_);
  if (destroyed_) return Status::InvalidArgument("stream object destroyed");
  if (offset > frontier_) {
    return Status::InvalidArgument("read past stream frontier");
  }
  if (offset < trimmed_until_) {
    return Status::NotFound("offset below trim point");
  }
  std::vector<StreamRecord> out;
  uint64_t pos = offset;
  while (pos < frontier_ && out.size() < max_records) {
    if (pos >= persisted_) {
      // Buffered tail.
      const StreamRecord& record = active_[pos - persisted_];
      out.push_back(record);
      ++pos;
      continue;
    }
    // Find the slice containing `pos` (slices sorted by start_offset).
    auto it = std::upper_bound(
        slices_.begin(), slices_.end(), pos,
        [](uint64_t v, const SliceMeta& s) { return v < s.start_offset; });
    const SliceMeta& slice = *(it - 1);
    const std::vector<StreamRecord>* records = nullptr;
    std::vector<StreamRecord> decoded;
    if (cache_ != nullptr) {
      records = cache_->Get(id_, slice.seq);
    }
    if (records == nullptr) {
      SL_ASSIGN_OR_RETURN(Bytes raw, plogs_->Read(slice.address));
      SL_ASSIGN_OR_RETURN(decoded, DecodeSlice(ByteView(raw)));
      if (cache_ != nullptr) {
        cache_->Put(id_, slice.seq, decoded);
      }
      records = &decoded;
    }
    for (uint64_t i = pos - slice.start_offset;
         i < records->size() && out.size() < max_records; ++i) {
      out.push_back((*records)[i]);
      ++pos;
    }
  }
  read_records->Increment(out.size());
  return out;
}

Result<uint64_t> StreamObject::FindOffsetByTimestamp(int64_t timestamp) const {
  MutexLock lock(&mu_);
  if (destroyed_) return Status::InvalidArgument("stream object destroyed");

  // Takes the address by value so the lambda body touches no mu_-guarded
  // state (thread-safety analysis treats lambdas as separate functions).
  auto load_slice =
      [this](storage::PlogAddress address) -> Result<std::vector<StreamRecord>> {
    SL_ASSIGN_OR_RETURN(Bytes raw, plogs_->Read(address));
    return DecodeSlice(ByteView(raw));
  };

  // Binary search over persisted slices by their last record's timestamp
  // (timestamps are non-decreasing across the log).
  size_t lo = first_live_slice_;
  size_t hi = slices_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    SL_ASSIGN_OR_RETURN(auto records, load_slice(slices_[mid].address));
    if (!records.empty() && records.back().timestamp >= timestamp) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo < slices_.size()) {
    SL_ASSIGN_OR_RETURN(auto records, load_slice(slices_[lo].address));
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].timestamp >= timestamp) {
        return slices_[lo].start_offset + i;
      }
    }
  }
  // The buffered tail.
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].timestamp >= timestamp) return persisted_ + i;
  }
  return frontier_;
}

uint64_t StreamObject::frontier() const {
  MutexLock lock(&mu_);
  return frontier_;
}

uint64_t StreamObject::persisted() const {
  MutexLock lock(&mu_);
  return persisted_;
}

Status StreamObject::Flush() {
  MutexLock lock(&mu_);
  WaitBatchIdleLocked();
  if (destroyed_) return Status::InvalidArgument("stream object destroyed");
  Status s = PersistSliceLocked(std::move(active_));
  active_.clear();
  return s;
}

Status StreamObject::RecoverFromIndex() {
  MutexLock lock(&mu_);
  WaitBatchIdleLocked();
  if (destroyed_) return Status::InvalidArgument("stream object destroyed");
  if (!slices_.empty() || frontier_ != 0) {
    return Status::InvalidArgument("recovery requires a fresh object");
  }
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "so/%016llu/slice/",
                static_cast<unsigned long long>(id_));
  std::string start(prefix);
  std::string end = start;
  end.back() = end.back() + 1;
  // Slice keys are zero-padded, so the scan returns them in append order.
  for (const auto& [key, value] : index_->Scan(start, end)) {
    Decoder dec{ByteView(value)};
    SliceMeta meta;
    meta.seq = std::stoull(key.substr(start.size()));
    uint64_t count, shard, plog_index;
    if (!dec.GetVarint(&meta.start_offset) || !dec.GetVarint(&count) ||
        !dec.GetVarint(&shard) || !dec.GetVarint(&plog_index) ||
        !dec.GetVarint(&meta.address.offset)) {
      return Status::Corruption("slice index entry " + key);
    }
    meta.count = static_cast<uint32_t>(count);
    meta.address.shard = static_cast<uint32_t>(shard);
    meta.address.plog_index = static_cast<uint32_t>(plog_index);
    slices_.push_back(meta);
  }
  if (!slices_.empty()) {
    const SliceMeta& last = slices_.back();
    next_slice_seq_ = last.seq + 1;
    persisted_ = last.start_offset + last.count;
    frontier_ = persisted_;
    trimmed_until_ = slices_.front().start_offset;
  }
  return Status::OK();
}

Status StreamObject::TrimTo(uint64_t offset) {
  MutexLock lock(&mu_);
  WaitBatchIdleLocked();
  if (destroyed_) return Status::InvalidArgument("stream object destroyed");
  if (offset > persisted_) {
    // Only persisted slices can be reclaimed; cap at the persisted bound.
    offset = persisted_;
  }
  // Release whole slices entirely below the trim point.
  while (first_live_slice_ < slices_.size()) {
    const SliceMeta& slice = slices_[first_live_slice_];
    if (slice.start_offset + slice.count > offset) break;
    SL_RETURN_NOT_OK(plogs_->MarkGarbage(slice.address, slice.payload_bytes));
    SL_RETURN_NOT_OK(index_->Delete(IndexKey(slice.seq)));
    ++first_live_slice_;
  }
  trimmed_until_ = std::max(trimmed_until_, offset);
  return Status::OK();
}

uint64_t StreamObject::trimmed_until() const {
  MutexLock lock(&mu_);
  return trimmed_until_;
}

Status StreamObject::Destroy() {
  MutexLock lock(&mu_);
  WaitBatchIdleLocked();
  if (destroyed_) return Status::OK();
  destroyed_ = true;
  for (size_t i = first_live_slice_; i < slices_.size(); ++i) {
    SL_RETURN_NOT_OK(
        plogs_->MarkGarbage(slices_[i].address, slices_[i].payload_bytes));
    SL_RETURN_NOT_OK(index_->Delete(IndexKey(slices_[i].seq)));
  }
  slices_.clear();
  active_.clear();
  return Status::OK();
}

// ---------------- StreamObjectManager ----------------

StreamObjectManager::StreamObjectManager(storage::PlogStore* plogs,
                                         kv::KvStore* index,
                                         sim::SimClock* clock,
                                         sim::DeviceModel* pmem,
                                         size_t cache_capacity_slices,
                                         ThreadPool* io_pool)
    : plogs_(plogs), index_(index), clock_(clock), io_pool_(io_pool) {
  if (pmem != nullptr) {
    cache_ = std::make_unique<ScmSliceCache>(pmem, cache_capacity_slices);
  }
}

Result<uint64_t> StreamObjectManager::CreateObject(
    const StreamObjectOptions& options) {
  MutexLock lock(&mu_);
  uint64_t id = next_id_++;
  // Persist the options so RecoverAll() can rebuild the object.
  Bytes encoded;
  EncodeObjectOptions(options, &encoded);
  SL_RETURN_NOT_OK(index_->Put(ObjectMetaKey(id), BytesToString(encoded)));
  ScmSliceCache* cache = options.use_scm_cache ? cache_.get() : nullptr;
  objects_[id] = std::make_unique<StreamObject>(id, plogs_, index_, clock_,
                                                options, cache, io_pool_);
  return id;
}

Result<size_t> StreamObjectManager::RecoverAll() {
  MutexLock lock(&mu_);
  if (!objects_.empty()) {
    return Status::InvalidArgument("recovery requires an empty manager");
  }
  size_t recovered = 0;
  for (const auto& [key, value] : index_->Scan("so/", "so0")) {
    // Keys: so/<id16>/meta and so/<id16>/slice/<seq16>.
    if (key.size() < 24 || key.compare(19, 5, "/meta") != 0) continue;
    uint64_t id = std::stoull(key.substr(3, 16));
    SL_ASSIGN_OR_RETURN(StreamObjectOptions options,
                        DecodeObjectOptions(ByteView(value)));
    ScmSliceCache* cache = options.use_scm_cache ? cache_.get() : nullptr;
    auto object = std::make_unique<StreamObject>(id, plogs_, index_, clock_,
                                                 options, cache, io_pool_);
    SL_RETURN_NOT_OK(object->RecoverFromIndex());
    objects_[id] = std::move(object);
    next_id_ = std::max(next_id_, id + 1);
    ++recovered;
  }
  return recovered;
}

StreamObject* StreamObjectManager::GetObject(uint64_t object_id) {
  MutexLock lock(&mu_);
  auto it = objects_.find(object_id);
  return it == objects_.end() ? nullptr : it->second.get();
}

Status StreamObjectManager::DestroyObject(uint64_t object_id) {
  // Detach the object under the manager lock, destroy it outside:
  // Destroy() waits for in-flight batch appends (a condition wait) and
  // issues index deletes, and doing that under mu_ would park every other
  // manager operation behind one object's drain.
  std::unique_ptr<StreamObject> object;
  {
    MutexLock lock(&mu_);
    auto it = objects_.find(object_id);
    if (it == objects_.end()) {
      return Status::NotFound("stream object " + std::to_string(object_id));
    }
    object = std::move(it->second);
    objects_.erase(it);
  }
  SL_RETURN_NOT_OK(object->Destroy());
  return index_->Delete(ObjectMetaKey(object_id));
}

size_t StreamObjectManager::num_objects() const {
  MutexLock lock(&mu_);
  return objects_.size();
}

}  // namespace streamlake::stream
