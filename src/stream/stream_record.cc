#include "stream/stream_record.h"

namespace streamlake::stream {

void EncodeStreamRecord(Bytes* dst, const StreamRecord& record) {
  PutLengthPrefixed(dst, std::string_view(record.key));
  PutLengthPrefixed(dst, ByteView(record.value));
  PutVarint64Signed(dst, record.timestamp);
  PutVarint64(dst, record.producer_id);
  PutVarint64(dst, record.producer_seq);
}

Result<StreamRecord> DecodeStreamRecord(Decoder* dec) {
  StreamRecord record;
  ByteView value;
  if (!dec->GetString(&record.key) || !dec->GetBytes(&value) ||
      !dec->GetVarintSigned(&record.timestamp) ||
      !dec->GetVarint(&record.producer_id) ||
      !dec->GetVarint(&record.producer_seq)) {
    return Status::Corruption("stream record");
  }
  record.value = value.ToBytes();
  return record;
}

void EncodeSlice(Bytes* dst, const std::vector<StreamRecord>& records) {
  PutVarint64(dst, records.size());
  for (const StreamRecord& record : records) {
    EncodeStreamRecord(dst, record);
  }
}

Result<std::vector<StreamRecord>> DecodeSlice(ByteView data) {
  Decoder dec(data);
  uint64_t count;
  if (!dec.GetVarint(&count)) return Status::Corruption("slice count");
  // Each record needs several bytes; a count beyond the payload is bogus
  // (and must not drive a huge allocation).
  if (count > dec.Remaining()) return Status::Corruption("slice count bogus");
  std::vector<StreamRecord> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SL_ASSIGN_OR_RETURN(StreamRecord record, DecodeStreamRecord(&dec));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace streamlake::stream
