#ifndef STREAMLAKE_STREAM_STREAM_RECORD_H_
#define STREAMLAKE_STREAM_STREAM_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/coding.h"
#include "common/result.h"

namespace streamlake::stream {

/// One key-value message inside a stream object. `producer_id`/
/// `producer_seq` implement idempotent writes: a retried duplicate carries
/// the same pair and is dropped by the stream object.
struct StreamRecord {
  std::string key;
  Bytes value;
  int64_t timestamp = 0;       // event time (seconds)
  uint64_t producer_id = 0;    // 0 = no idempotence tracking
  uint64_t producer_seq = 0;

  size_t ByteSize() const { return key.size() + value.size() + 24; }

  bool operator==(const StreamRecord& other) const {
    return key == other.key && value == other.value &&
           timestamp == other.timestamp &&
           producer_id == other.producer_id &&
           producer_seq == other.producer_seq;
  }
};

void EncodeStreamRecord(Bytes* dst, const StreamRecord& record);
Result<StreamRecord> DecodeStreamRecord(Decoder* dec);

/// Serialize a whole slice of records (the persistence unit of Fig. 4).
void EncodeSlice(Bytes* dst, const std::vector<StreamRecord>& records);
Result<std::vector<StreamRecord>> DecodeSlice(ByteView data);

}  // namespace streamlake::stream

#endif  // STREAMLAKE_STREAM_STREAM_RECORD_H_
