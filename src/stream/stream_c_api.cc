#include "stream/stream_c_api.h"

namespace streamlake::stream {

namespace {

StreamObjectManager* g_manager = nullptr;

int32_t ToReturnCode(const Status& s) {
  return s.ok() ? 0 : -static_cast<int32_t>(s.code());
}

}  // namespace

void SetServerStreamManager(StreamObjectManager* manager) {
  g_manager = manager;
}

int32_t CreateServerStreamObject(const CREATE_OPTIONS_S* option,
                                 object_id_t* objectId) {
  if (g_manager == nullptr || option == nullptr || objectId == nullptr) {
    return -static_cast<int32_t>(StatusCode::kInvalidArgument);
  }
  StreamObjectOptions options;
  options.redundancy =
      option->redundancy_mode == 0
          ? storage::RedundancyConfig::Replication(option->replicas)
          : storage::RedundancyConfig::ErasureCoding(option->ec_data,
                                                     option->ec_parity);
  options.io_quota_records_per_sec = option->io_quota_records_per_sec;
  options.io_aggregation = option->io_aggregation != 0;
  auto id = g_manager->CreateObject(options);
  if (!id.ok()) return ToReturnCode(id.status());
  *objectId = *id;
  return 0;
}

int32_t DestroyServerStreamObject(const object_id_t* objectId) {
  if (g_manager == nullptr || objectId == nullptr) {
    return -static_cast<int32_t>(StatusCode::kInvalidArgument);
  }
  return ToReturnCode(g_manager->DestroyObject(*objectId));
}

int32_t AppendServerStreamObject(const object_id_t* objectId,
                                 const IO_CONTENT_S* io, uint64_t* offset) {
  if (g_manager == nullptr || objectId == nullptr || io == nullptr ||
      offset == nullptr) {
    return -static_cast<int32_t>(StatusCode::kInvalidArgument);
  }
  StreamObject* object = g_manager->GetObject(*objectId);
  if (object == nullptr) return -static_cast<int32_t>(StatusCode::kNotFound);
  auto result = object->Append(io->records);
  if (!result.ok()) return ToReturnCode(result.status());
  *offset = *result;
  return 0;
}

int32_t ReadServerStreamObject(const object_id_t* objectId, uint64_t offset,
                               const READ_CTRL_S* readCtrl, IO_CONTENT_S* io) {
  if (g_manager == nullptr || objectId == nullptr || io == nullptr) {
    return -static_cast<int32_t>(StatusCode::kInvalidArgument);
  }
  StreamObject* object = g_manager->GetObject(*objectId);
  if (object == nullptr) return -static_cast<int32_t>(StatusCode::kNotFound);
  uint64_t max_records =
      readCtrl == nullptr ? UINT64_MAX : readCtrl->max_records;
  auto result = object->Read(offset, max_records);
  if (!result.ok()) return ToReturnCode(result.status());
  io->records = std::move(*result);
  return 0;
}

}  // namespace streamlake::stream
