#ifndef STREAMLAKE_STREAM_STREAM_OBJECT_H_
#define STREAMLAKE_STREAM_STREAM_OBJECT_H_

#include <list>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/threadpool.h"
#include "kv/kv_store.h"
#include "sim/clock.h"
#include "sim/device_model.h"
#include "storage/object_store.h"
#include "storage/plog_store.h"
#include "stream/stream_record.h"

namespace streamlake::stream {

/// Creation options of a stream object (CREATE_OPTIONS_S, Fig. 3): data
/// redundancy method and I/O quota.
struct StreamObjectOptions {
  storage::RedundancyConfig redundancy =
      storage::RedundancyConfig::Replication(3);
  /// Max appended records/second measured on the sim clock; 0 = unlimited.
  uint64_t io_quota_records_per_sec = 0;
  /// Aggregate appends into 256-record slices before hitting storage
  /// ("an I/O aggregation mechanism is used to aggregate small I/O
  /// requests ... can be disabled for latency-sensitive scenarios").
  bool io_aggregation = true;
  /// Records per slice ("each slice contains up to 256 records", Fig. 4).
  size_t records_per_slice = 256;
  /// Serve reads through the manager's SCM slice cache when available
  /// (the scm_cache topic flag of Fig. 8).
  bool use_scm_cache = true;
};

/// LRU cache of decoded slices on storage-class memory (the scm_cache
/// topic option / hardware Set-2 of Section VII-C). Shared by the stream
/// objects of one manager.
class ScmSliceCache {
 public:
  ScmSliceCache(sim::DeviceModel* pmem, size_t capacity_slices)
      : pmem_(pmem), capacity_(capacity_slices) {}

  /// Returns the cached slice or nullptr; charges a PMEM read on hit.
  const std::vector<StreamRecord>* Get(uint64_t object_id, uint64_t slice_seq);
  /// Insert a slice; charges a PMEM write and evicts LRU entries.
  void Put(uint64_t object_id, uint64_t slice_seq,
           std::vector<StreamRecord> records);

  uint64_t hits() const {
    MutexLock lock(&mu_);
    return hits_;
  }
  uint64_t misses() const {
    MutexLock lock(&mu_);
    return misses_;
  }

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct Entry {
    Key key;
    std::vector<StreamRecord> records;
    size_t bytes = 0;
  };

  sim::DeviceModel* pmem_;
  size_t capacity_;
  mutable Mutex mu_{LockRank::kScmSliceCache, "stream.scm_cache"};
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recent
  std::map<Key, std::list<Entry>::iterator> index_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
};

/// \brief A stream object: the store-layer abstraction for one partition
/// of a key-value message stream (Section IV-A).
///
/// Records are strictly ordered by their append offset; slices of up to
/// 256 records are the persistence unit, hashed over the PLog shards
/// (Fig. 4). Writes are idempotent per producer. Thread-safe.
class StreamObject {
 public:
  StreamObject(uint64_t id, storage::PlogStore* plogs, kv::KvStore* index,
               sim::SimClock* clock, StreamObjectOptions options,
               ScmSliceCache* cache, ThreadPool* io_pool = nullptr);

  uint64_t id() const { return id_; }

  /// Append records; returns the offset of the first appended record
  /// (AppendServerStreamObject). Duplicates from producer retries are
  /// skipped; quota overruns return QuotaExceeded. Takes the batch by
  /// value so callers on the hot path can move it in.
  Result<uint64_t> Append(std::vector<StreamRecord> records);

  /// Group append (the batched write path of the shard-parallel design):
  /// appends `records`, then persists the whole unpersisted tail —
  /// buffered records included — as records_per_slice-sized slices whose
  /// PLog appends fan out over the shared I/O pool (sequential when no
  /// pool was supplied). The stream lock is NOT held across the device
  /// I/O: readers and other stream objects proceed while slices persist;
  /// mutating operations queue behind the in-flight batch. Slice index
  /// entries commit in slice order only after every PLog append succeeded,
  /// so a failed batch leaves the records buffered (re-flushable) and
  /// garbage-collects any orphaned PLog appends. Returns the offset of the
  /// first appended record. Idempotence and quota behave exactly like
  /// Append.
  Result<uint64_t> AppendBatch(std::vector<StreamRecord> records);

  /// Read up to `max_records` records starting at `offset`
  /// (ReadServerStreamObject). Reading at the frontier returns an empty
  /// vector (the message service polls).
  Result<std::vector<StreamRecord>> Read(uint64_t offset,
                                         size_t max_records) const;

  /// Next offset to be assigned (== record count including buffered tail).
  uint64_t frontier() const;

  /// Smallest offset whose record timestamp is >= `timestamp` (consumers
  /// seeking by event time, like Kafka's offsetsForTimes). Returns the
  /// frontier when every record is older. Assumes timestamps are
  /// non-decreasing, which time-ordered log ingestion provides.
  Result<uint64_t> FindOffsetByTimestamp(int64_t timestamp) const;

  /// Number of records already persisted to PLogs.
  uint64_t persisted() const;

  /// Force the buffered tail slice out to storage.
  Status Flush();

  /// Mark all persisted slices as garbage (DestroyServerStreamObject).
  Status Destroy();

  /// Drop records below `offset` (storage reclaimed slice-by-slice). Used
  /// by stream-to-table conversion with delete_msg: once converted, the
  /// stream copy is released so only one copy remains. Reads below the
  /// trim point fail.
  Status TrimTo(uint64_t offset);

  /// Crash recovery: rebuild the slice directory from the durable KV
  /// index (Fig. 4: "we use key-value databases to serve as indexes for
  /// PLogs"). The unpersisted tail buffer is lost — producers re-send it
  /// and idempotence drops any duplicates. Requires a fresh object.
  Status RecoverFromIndex();

  /// First offset still readable (0 until trimmed).
  uint64_t trimmed_until() const;

 private:
  struct SliceMeta {
    uint64_t seq = 0;  // index/cache key; survives trims and recovery
    uint64_t start_offset = 0;
    uint32_t count = 0;
    storage::PlogAddress address;
    uint64_t payload_bytes = 0;
  };

  /// One slice's worth of work for AppendBatch: encoded and appended to
  /// the PLog store with no stream lock held (possibly on an I/O pool
  /// thread), then committed to the slice index under mu_.
  struct SliceJob {
    uint64_t seq = 0;
    std::vector<StreamRecord> records;
    storage::PlogAddress address;
    uint64_t payload_bytes = 0;
    Status status = Status::OK();
  };

  Status PersistSliceLocked(std::vector<StreamRecord> records)
      REQUIRES(mu_);
  Status CheckQuotaLocked(size_t incoming) REQUIRES(mu_);
  /// Blocks until no AppendBatch persist phase is in flight. Every
  /// mutating entry point calls this right after taking mu_; read paths
  /// need not (the in-flight state is always readable: active_ keeps the
  /// unpersisted tail until the batch commits).
  void WaitBatchIdleLocked() REQUIRES(mu_);
  /// Encode + PLog-append one slice. Takes no locks on the stream object;
  /// called with mu_ released.
  void RunSliceJob(SliceJob* job);
  std::string IndexKey(uint64_t slice_seq) const;

  const uint64_t id_;
  storage::PlogStore* plogs_;
  kv::KvStore* index_;
  sim::SimClock* clock_;
  StreamObjectOptions options_;
  ScmSliceCache* cache_;    // may be nullptr
  ThreadPool* io_pool_;     // may be nullptr (AppendBatch persists inline)

  mutable Mutex mu_{LockRank::kStreamObject, "stream.object"};
  /// True while an AppendBatch holds slices in flight with mu_ released;
  /// paired with batch_cv_. Mutators wait; readers do not.
  bool batch_inflight_ GUARDED_BY(mu_) = false;
  CondVar batch_cv_;
  std::vector<SliceMeta> slices_ GUARDED_BY(mu_);
  std::vector<StreamRecord> active_ GUARDED_BY(mu_);  // buffered tail
  uint64_t frontier_ GUARDED_BY(mu_) = 0;
  uint64_t persisted_ GUARDED_BY(mu_) = 0;
  std::unordered_map<uint64_t, uint64_t> producer_last_seq_
      GUARDED_BY(mu_);
  uint64_t trimmed_until_ GUARDED_BY(mu_) = 0;
  size_t first_live_slice_ GUARDED_BY(mu_) = 0;
  uint64_t next_slice_seq_ GUARDED_BY(mu_) = 0;
  // Quota token accounting.
  uint64_t quota_epoch_ns_ GUARDED_BY(mu_) = 0;
  uint64_t quota_consumed_ GUARDED_BY(mu_) = 0;
  bool destroyed_ GUARDED_BY(mu_) = false;
};

/// Creates, resolves, and destroys stream objects; owns the SCM cache.
/// This is the "stream object client" surface workers talk to.
class StreamObjectManager {
 public:
  /// `io_pool` (optional) is handed to every stream object as the shared
  /// AppendBatch persist pool; the caller owns it and must keep it alive
  /// for the manager's lifetime.
  StreamObjectManager(storage::PlogStore* plogs, kv::KvStore* index,
                      sim::SimClock* clock,
                      sim::DeviceModel* pmem = nullptr,
                      size_t cache_capacity_slices = 1024,
                      ThreadPool* io_pool = nullptr);

  /// CreateServerStreamObject: allocate an object id. The options persist
  /// in the KV index so a restarted manager can recover the object.
  Result<uint64_t> CreateObject(const StreamObjectOptions& options);

  /// Crash recovery: recreate every stream object recorded in the KV
  /// index (options + slice directories). The manager must be empty.
  /// Returns the number of objects recovered.
  Result<size_t> RecoverAll();

  /// Resolve an object id; nullptr when unknown or destroyed.
  StreamObject* GetObject(uint64_t object_id);

  /// DestroyServerStreamObject.
  Status DestroyObject(uint64_t object_id);

  ScmSliceCache* cache() { return cache_.get(); }
  size_t num_objects() const;

 private:
  storage::PlogStore* plogs_;
  kv::KvStore* index_;
  sim::SimClock* clock_;
  ThreadPool* io_pool_;
  std::unique_ptr<ScmSliceCache> cache_;
  mutable Mutex mu_{LockRank::kStreamObjectManager,
                    "stream.object_manager"};
  std::map<uint64_t, std::unique_ptr<StreamObject>> objects_
      GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace streamlake::stream

#endif  // STREAMLAKE_STREAM_STREAM_OBJECT_H_
