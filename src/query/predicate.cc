#include "query/predicate.h"

namespace streamlake::query {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kIn:
      return "IN";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kIsNull:
      return "IS NULL";
    case CompareOp::kIsNotNull:
      return "IS NOT NULL";
  }
  return "?";
}

Predicate Predicate::Le(std::string column, format::Value v) {
  return Predicate{std::move(column), CompareOp::kLe, std::move(v), {}};
}
Predicate Predicate::Ge(std::string column, format::Value v) {
  return Predicate{std::move(column), CompareOp::kGe, std::move(v), {}};
}
Predicate Predicate::Lt(std::string column, format::Value v) {
  return Predicate{std::move(column), CompareOp::kLt, std::move(v), {}};
}
Predicate Predicate::Gt(std::string column, format::Value v) {
  return Predicate{std::move(column), CompareOp::kGt, std::move(v), {}};
}
Predicate Predicate::Eq(std::string column, format::Value v) {
  return Predicate{std::move(column), CompareOp::kEq, std::move(v), {}};
}
Predicate Predicate::Ne(std::string column, format::Value v) {
  return Predicate{std::move(column), CompareOp::kNe, std::move(v), {}};
}
Predicate Predicate::In(std::string column,
                        std::vector<format::Value> values) {
  Predicate p;
  p.column = std::move(column);
  p.op = CompareOp::kIn;
  p.in_list = std::move(values);
  if (!p.in_list.empty()) p.literal = p.in_list.front();
  return p;
}
Predicate Predicate::IsNull(std::string column) {
  return Predicate{std::move(column), CompareOp::kIsNull, {}, {}};
}
Predicate Predicate::IsNotNull(std::string column) {
  return Predicate{std::move(column), CompareOp::kIsNotNull, {}, {}};
}

bool Predicate::Matches(const format::Value& v) const {
  if (op == CompareOp::kIsNull) return format::IsNull(v);
  if (op == CompareOp::kIsNotNull) return !format::IsNull(v);
  // SQL comparison semantics: NULL satisfies no comparison predicate.
  if (format::IsNull(v)) return false;
  if (op != CompareOp::kIn && format::IsNull(literal)) return false;
  switch (op) {
    case CompareOp::kLe:
      return format::CompareValues(v, literal) <= 0;
    case CompareOp::kGe:
      return format::CompareValues(v, literal) >= 0;
    case CompareOp::kLt:
      return format::CompareValues(v, literal) < 0;
    case CompareOp::kGt:
      return format::CompareValues(v, literal) > 0;
    case CompareOp::kEq:
      return format::CompareValues(v, literal) == 0;
    case CompareOp::kNe:
      return format::CompareValues(v, literal) != 0;
    case CompareOp::kIn:
      for (const format::Value& candidate : in_list) {
        if (format::IsNull(candidate)) continue;
        if (format::CompareValues(v, candidate) == 0) return true;
      }
      return false;
    case CompareOp::kIsNull:
    case CompareOp::kIsNotNull:
      break;  // handled above
  }
  return false;
}

std::string Predicate::ToString() const {
  if (op == CompareOp::kIsNull || op == CompareOp::kIsNotNull) {
    return column + " " + CompareOpName(op);
  }
  if (op == CompareOp::kIn) {
    std::string s = column + " IN (";
    for (size_t i = 0; i < in_list.size(); ++i) {
      if (i) s += ", ";
      s += format::ValueToString(in_list[i]);
    }
    return s + ")";
  }
  return column + " " + CompareOpName(op) + " " +
         format::ValueToString(literal);
}

void Predicate::EncodeTo(Bytes* dst) const {
  PutLengthPrefixed(dst, std::string_view(column));
  dst->push_back(static_cast<uint8_t>(op));
  format::EncodeValue(dst, literal);
  PutVarint64(dst, in_list.size());
  for (const format::Value& v : in_list) format::EncodeValue(dst, v);
}

Result<Predicate> Predicate::DecodeFrom(Decoder* dec) {
  Predicate p;
  if (!dec->GetString(&p.column)) return Status::Corruption("pred column");
  if (dec->Remaining() < 1) return Status::Corruption("pred op");
  p.op = static_cast<CompareOp>(*dec->position());
  if (p.op > CompareOp::kIsNotNull) return Status::Corruption("pred op tag");
  dec->Skip(1);
  SL_ASSIGN_OR_RETURN(p.literal, format::DecodeValue(dec));
  uint64_t in_count;
  if (!dec->GetVarint(&in_count)) return Status::Corruption("pred in count");
  if (in_count > dec->Remaining()) {
    return Status::Corruption("pred in count bogus");
  }
  for (uint64_t i = 0; i < in_count; ++i) {
    SL_ASSIGN_OR_RETURN(format::Value v, format::DecodeValue(dec));
    p.in_list.push_back(std::move(v));
  }
  return p;
}

void Conjunction::EncodeTo(Bytes* dst) const {
  PutVarint64(dst, predicates_.size());
  for (const Predicate& p : predicates_) p.EncodeTo(dst);
}

Result<Conjunction> Conjunction::DecodeFrom(Decoder* dec) {
  uint64_t count;
  if (!dec->GetVarint(&count)) return Status::Corruption("conjunction count");
  if (count > dec->Remaining()) {
    return Status::Corruption("conjunction count bogus");
  }
  std::vector<Predicate> predicates;
  predicates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SL_ASSIGN_OR_RETURN(Predicate p, Predicate::DecodeFrom(dec));
    predicates.push_back(std::move(p));
  }
  return Conjunction(std::move(predicates));
}

bool PredicateMayMatchRange(const Predicate& predicate,
                            const format::Value& min,
                            const format::Value& max) {
  switch (predicate.op) {
    case CompareOp::kLe:
      return format::CompareValues(min, predicate.literal) <= 0;
    case CompareOp::kLt:
      return format::CompareValues(min, predicate.literal) < 0;
    case CompareOp::kGe:
      return format::CompareValues(max, predicate.literal) >= 0;
    case CompareOp::kGt:
      return format::CompareValues(max, predicate.literal) > 0;
    case CompareOp::kEq:
      return format::CompareValues(min, predicate.literal) <= 0 &&
             format::CompareValues(max, predicate.literal) >= 0;
    case CompareOp::kNe:
      // Only an all-equal range [v, v] with v == literal is fully excluded.
      return !(format::CompareValues(min, predicate.literal) == 0 &&
               format::CompareValues(max, predicate.literal) == 0);
    case CompareOp::kIn:
      for (const format::Value& v : predicate.in_list) {
        if (format::CompareValues(min, v) <= 0 &&
            format::CompareValues(max, v) >= 0) {
          return true;
        }
      }
      return false;
    case CompareOp::kIsNull:
    case CompareOp::kIsNotNull:
      return true;  // a value range says nothing about NULLs
  }
  return true;
}

bool Conjunction::Matches(const format::Schema& schema,
                          const format::Row& row) const {
  for (const Predicate& predicate : predicates_) {
    int col = schema.FieldIndex(predicate.column);
    if (col < 0) return false;  // unknown column matches nothing
    if (!predicate.Matches(row.fields[col])) return false;
  }
  return true;
}

bool Conjunction::MayMatchStats(const std::string& column,
                                const format::ColumnStats& stats,
                                uint64_t row_count) const {
  const bool all_null = stats.has_extended && row_count > 0 &&
                        stats.null_count == row_count;
  for (const Predicate& predicate : predicates_) {
    if (predicate.column != column) continue;
    if (predicate.op == CompareOp::kIsNull) {
      if (stats.has_extended && stats.null_count == 0) return false;
      continue;
    }
    if (predicate.op == CompareOp::kIsNotNull) {
      if (all_null) return false;
      continue;
    }
    if (all_null) return false;  // comparisons never match NULL
    if (!stats.min.has_value() || !stats.max.has_value()) continue;
    if (format::TypeOf(*stats.min) != format::TypeOf(predicate.literal)) {
      continue;  // mismatched type: cannot prune safely
    }
    if (!PredicateMayMatchRange(predicate, *stats.min, *stats.max)) {
      return false;
    }
  }
  return true;
}

std::string Conjunction::ToString() const {
  if (predicates_.empty()) return "TRUE";
  std::string s;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i) s += " AND ";
    s += predicates_[i].ToString();
  }
  return s;
}

}  // namespace streamlake::query
