#ifndef STREAMLAKE_QUERY_SPEC_H_
#define STREAMLAKE_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "query/predicate.h"

namespace streamlake::query {

/// Aggregate functions supported by the pushdown executor. COUNT is what
/// the paper's DAU query uses (Fig. 13).
struct AggregateSpec {
  enum class Func { kCount, kSum, kMin, kMax, kAvg };
  Func func = Func::kCount;
  std::string column;  // empty for COUNT(*)
  std::string alias;

  static AggregateSpec CountStar(std::string alias = "count");
  static AggregateSpec Sum(std::string column, std::string alias = "");
  static AggregateSpec Min(std::string column, std::string alias = "");
  static AggregateSpec Max(std::string column, std::string alias = "");
  static AggregateSpec Avg(std::string column, std::string alias = "");
};

/// A filter + (optional) GROUP BY + aggregate query, e.g. Fig. 13:
///   SELECT COUNT(*) FROM t WHERE url = ... AND start_time in [a, b)
///   GROUP BY province
struct QuerySpec {
  Conjunction where;
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;
  /// For non-aggregate queries: columns to return (empty = all).
  std::vector<std::string> projection;
  /// Sort the result rows by this output column (by name; applies to
  /// aggregate results too). Empty = no ordering.
  std::string order_by;
  bool order_descending = false;
  /// Keep only the first `limit` result rows (0 = unlimited).
  uint64_t limit = 0;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<format::Row> rows;
  // Execution counters (fed into the per-query metrics of the benches).
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
};

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_SPEC_H_
