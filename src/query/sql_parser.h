#ifndef STREAMLAKE_QUERY_SQL_PARSER_H_
#define STREAMLAKE_QUERY_SQL_PARSER_H_

#include <string>
#include <vector>

#include "query/executor.h"

namespace streamlake::query {

/// A parsed SQL statement over one table.
struct SqlStatement {
  enum class Kind { kSelect, kInsert, kDelete, kUpdate };

  Kind kind = Kind::kSelect;
  std::string table;

  // kSelect
  QuerySpec select;

  // kInsert: positional VALUES tuples (validated against the table schema
  // at execution time).
  std::vector<std::vector<format::Value>> insert_rows;

  // kDelete / kUpdate
  Conjunction where;

  // kUpdate
  std::string set_column;
  format::Value set_value;
};

/// \brief Parser for the SQL dialect the paper's evaluation uses
/// (Fig. 13): single-table SELECT with pushdown predicates, GROUP BY,
/// aggregate functions, ORDER BY, LIMIT — plus INSERT INTO ... VALUES,
/// DELETE FROM ... WHERE, and UPDATE ... SET ... WHERE.
///
/// Grammar (keywords case-insensitive; `--` comments to end of line):
///   SELECT (expr [AS alias])[, ...] FROM table
///     [WHERE col op literal [AND ...]]
///     [GROUP BY col[, ...]] [ORDER BY name [ASC|DESC]] [LIMIT n]
///   expr   := col | * | COUNT(*) | COUNT(col) | SUM(col) | MIN(col)
///           | MAX(col) | AVG(col)
///   op     := = | <= | >= | < | > | IN (literal[, ...])
///   literal:= 123 | 1.5 | 'text' | TRUE | FALSE
Result<SqlStatement> ParseSql(const std::string& sql);

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_SQL_PARSER_H_
