#ifndef STREAMLAKE_QUERY_SQL_PARSER_H_
#define STREAMLAKE_QUERY_SQL_PARSER_H_

#include <string>
#include <vector>

#include "query/spec.h"

namespace streamlake::query {

/// One join clause of a SELECT: either an explicit `JOIN t ON a = b`
/// (inner) or a semi join desugared from `IN (SELECT ...)` / `EXISTS
/// (SELECT ...)`. Key columns are stored as parsed (possibly
/// `alias.column` qualified); the planner resolves which side is probe
/// and which is build.
struct JoinSpec {
  enum class Kind { kInner, kSemi };
  Kind kind = Kind::kInner;
  std::string table;
  std::string alias;      // defaults to `table` when not aliased
  std::string left_key;   // outer/probe-side key as parsed
  std::string right_key;  // joined/build-side key as parsed
  /// Literal predicates scoped to the joined table (from the subquery's
  /// WHERE clause); pushed down to the build-side scan.
  Conjunction where;
};

/// A parsed SQL statement. SELECT may reference several tables via
/// joins; INSERT/DELETE/UPDATE stay single-table.
struct SqlStatement {
  enum class Kind { kSelect, kInsert, kDelete, kUpdate };

  Kind kind = Kind::kSelect;
  std::string table;

  // kSelect
  std::string table_alias;  // defaults to `table`
  std::vector<JoinSpec> joins;
  QuerySpec select;

  // kInsert: positional VALUES tuples (validated against the table schema
  // at execution time).
  std::vector<std::vector<format::Value>> insert_rows;

  // kDelete / kUpdate
  Conjunction where;

  // kUpdate
  std::string set_column;
  format::Value set_value;
};

/// \brief Parser for the SQL dialect the paper's evaluation uses
/// (Fig. 13): SELECT with pushdown predicates, GROUP BY, aggregate
/// functions, ORDER BY, LIMIT, inner joins and semi-join subqueries —
/// plus INSERT INTO ... VALUES, DELETE FROM ... WHERE, and
/// UPDATE ... SET ... WHERE. Parse errors report the offending token and
/// its byte position in the input.
///
/// Grammar (keywords case-insensitive; `--` comments to end of line):
///   SELECT (expr [AS alias])[, ...] FROM table [alias]
///     ([INNER] JOIN table [alias] ON colref = colref)*
///     [WHERE term [AND ...]]
///     [GROUP BY colref[, ...]] [ORDER BY name [ASC|DESC]] [LIMIT n]
///   expr   := colref | * | COUNT(*) | COUNT(colref) | SUM(colref)
///           | MIN(colref) | MAX(colref) | AVG(colref)
///   term   := colref op literal | colref IN (literal[, ...])
///           | colref BETWEEN literal AND literal
///           | colref IN (SELECT colref FROM table [alias] [WHERE ...])
///           | EXISTS (SELECT * FROM table [alias] WHERE ...)
///   op     := = | != | <> | <= | >= | < | >
///   colref := column | alias.column
///   literal:= 123 | 1.5 | 'text' | TRUE | FALSE
///
/// Subqueries (IN/EXISTS forms) are only allowed in SELECT statements;
/// their WHERE clauses may hold literal predicates on the subquery table,
/// and an EXISTS subquery must contain exactly one correlation
/// `outer.col = inner.col` with both sides alias-qualified.
Result<SqlStatement> ParseSql(const std::string& sql);

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_SQL_PARSER_H_
