#ifndef STREAMLAKE_QUERY_PLAN_H_
#define STREAMLAKE_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "format/schema.h"
#include "query/sql_parser.h"
#include "query/spec.h"

namespace streamlake::query {

/// \brief A query plan: a tree of composable relational operators the
/// planner lowers a parsed SqlStatement into, and the table-side runner
/// walks. Leaf ScanNodes carry per-table pushdown filters; HashJoinNode
/// children are [probe subtree, build scan]; the root chain is
/// SortLimit -> (Aggregate | Project) -> joins/scans.
struct PlanNode {
  enum class Kind { kScan, kFilter, kProject, kHashJoin, kAggregate,
                    kSortLimit };

  explicit PlanNode(Kind k) : kind(k) {}
  virtual ~PlanNode() = default;

  Kind kind;
  /// Schema of the rows this node emits. For multi-table plans the field
  /// names are `alias.column` qualified.
  format::Schema output_schema;
  std::vector<std::unique_ptr<PlanNode>> children;
};

/// Leaf: scan one table's files (through the parallel Select machinery)
/// with a pushdown filter. Column names in `filter` are unqualified —
/// they address the table's own schema.
struct ScanNode : PlanNode {
  ScanNode() : PlanNode(Kind::kScan) {}
  /// Index into the pinned-table list the runner executes against.
  size_t table_index = 0;
  std::string table;
  std::string alias;
  Conjunction filter;
};

/// Row filter on qualified output columns of the child. The planner pushes
/// all SQL predicates into scans; FilterNode exists for plans built
/// directly (e.g. post-join residual filters).
struct FilterNode : PlanNode {
  FilterNode() : PlanNode(Kind::kFilter) {}
  Conjunction filter;
};

/// Column projection over the child's output (by qualified name).
struct ProjectNode : PlanNode {
  ProjectNode() : PlanNode(Kind::kProject) {}
  std::vector<std::string> columns;
};

/// Hash join: children[0] is the probe subtree, children[1] the build
/// scan. The build side is materialized into a key -> rows map; probe
/// rows stream through it. kSemi emits the probe row once when its key is
/// present (IN / EXISTS desugaring); kInner emits probe+build row concat
/// per match.
struct HashJoinNode : PlanNode {
  enum class JoinKind { kInner, kSemi };
  HashJoinNode() : PlanNode(Kind::kHashJoin) {}
  JoinKind join_kind = JoinKind::kInner;
  std::string probe_key;  // qualified column in children[0]'s output
  std::string build_key;  // unqualified column in the build table schema
  int probe_col = -1;     // resolved indices
  int build_col = -1;
};

/// Group-by + aggregates over the child's output (qualified names).
struct AggregateNode : PlanNode {
  AggregateNode() : PlanNode(Kind::kAggregate) {}
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;
};

/// ORDER BY an output column name (aggregate aliases included) + LIMIT.
struct SortLimitNode : PlanNode {
  SortLimitNode() : PlanNode(Kind::kSortLimit) {}
  std::string order_by;
  bool order_descending = false;
  uint64_t limit = 0;
};

/// One table referenced by a statement, already resolved against the
/// catalog (schema from the pinned snapshot's TableInfo).
struct PlanTableRef {
  std::string table;
  std::string alias;
  const format::Schema* schema = nullptr;
};

/// Lower a parsed SELECT into a plan tree. `refs[0]` is the FROM table,
/// refs[1..] the joined tables in statement order. Column references are
/// resolved (qualified names checked against aliases, unqualified names
/// required to be unambiguous) and join key types are verified to match.
Result<std::unique_ptr<PlanNode>> PlanSelect(
    const SqlStatement& statement, const std::vector<PlanTableRef>& refs);

/// Render the plan as an indented tree (debugging / tests).
std::string PlanToString(const PlanNode& root);

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_PLAN_H_
