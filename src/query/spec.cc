#include "query/spec.h"

namespace streamlake::query {

AggregateSpec AggregateSpec::CountStar(std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kCount;
  spec.alias = std::move(alias);
  return spec;
}

AggregateSpec AggregateSpec::Sum(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kSum;
  spec.alias = alias.empty() ? "sum(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

AggregateSpec AggregateSpec::Min(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kMin;
  spec.alias = alias.empty() ? "min(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

AggregateSpec AggregateSpec::Max(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kMax;
  spec.alias = alias.empty() ? "max(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

AggregateSpec AggregateSpec::Avg(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kAvg;
  spec.alias = alias.empty() ? "avg(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

}  // namespace streamlake::query
