#include "query/sql_parser.h"

#include <algorithm>
#include <cctype>

namespace streamlake::query {

namespace {

enum class TokenKind {
  kIdent,    // bare word (keywords resolved by comparison)
  kInteger,
  kDouble,
  kString,   // 'quoted'
  kSymbol,   // ( ) , * = <= >= < >
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // uppercased for idents; verbatim for strings
  std::string raw;   // original spelling
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < n && input_[i + 1] == '-') {
        while (i < n && input_[i] != '\n') ++i;  // -- comment
        continue;
      }
      if (c == '\'') {
        size_t end = input_.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        Token token;
        token.kind = TokenKind::kString;
        token.text = input_.substr(i + 1, end - i - 1);
        token.raw = token.text;
        tokens.push_back(std::move(token));
        i = end + 1;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t start = i;
        if (c == '-') ++i;
        bool is_double = false;
        while (i < n && (std::isdigit(static_cast<unsigned char>(input_[i])) ||
                         input_[i] == '.')) {
          if (input_[i] == '.') is_double = true;
          ++i;
        }
        Token token;
        token.kind = is_double ? TokenKind::kDouble : TokenKind::kInteger;
        token.text = input_.substr(start, i - start);
        token.raw = token.text;
        tokens.push_back(std::move(token));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(input_[i])) ||
                         input_[i] == '_')) {
          ++i;
        }
        Token token;
        token.kind = TokenKind::kIdent;
        token.raw = input_.substr(start, i - start);
        token.text = token.raw;
        std::transform(token.text.begin(), token.text.end(),
                       token.text.begin(), ::toupper);
        tokens.push_back(std::move(token));
        continue;
      }
      // Symbols, including two-character comparators.
      if ((c == '<' || c == '>') && i + 1 < n && input_[i + 1] == '=') {
        tokens.push_back(Token{TokenKind::kSymbol, input_.substr(i, 2),
                               input_.substr(i, 2)});
        i += 2;
        continue;
      }
      if (std::string("(),*=<>").find(c) != std::string::npos) {
        tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c),
                               std::string(1, c)});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in SQL");
    }
    tokens.push_back(Token{});
    return tokens;
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> Parse() {
    SqlStatement statement;
    if (Accept("SELECT")) {
      statement.kind = SqlStatement::Kind::kSelect;
      SL_RETURN_NOT_OK(ParseSelect(&statement));
    } else if (Accept("INSERT")) {
      statement.kind = SqlStatement::Kind::kInsert;
      SL_RETURN_NOT_OK(ParseInsert(&statement));
    } else if (Accept("DELETE")) {
      statement.kind = SqlStatement::Kind::kDelete;
      SL_RETURN_NOT_OK(ParseDelete(&statement));
    } else if (Accept("UPDATE")) {
      statement.kind = SqlStatement::Kind::kUpdate;
      SL_RETURN_NOT_OK(ParseUpdate(&statement));
    } else {
      return Status::InvalidArgument("expected SELECT/INSERT/DELETE/UPDATE");
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after statement: " +
                                     Peek().raw);
    }
    return statement;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool Accept(std::string_view keyword) {
    if (Peek().kind == TokenKind::kIdent && Peek().text == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(std::string_view keyword) {
    if (!Accept(keyword)) {
      return Status::InvalidArgument("expected " + std::string(keyword) +
                                     " near '" + Peek().raw + "'");
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view symbol) {
    if (!AcceptSymbol(symbol)) {
      return Status::InvalidArgument("expected '" + std::string(symbol) +
                                     "' near '" + Peek().raw + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().raw + "'");
    }
    return Next().raw;
  }

  Result<format::Value> ParseLiteral() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInteger: {
        int64_t v = std::stoll(Next().text);
        return format::Value(v);
      }
      case TokenKind::kDouble:
        return format::Value(std::stod(Next().text));
      case TokenKind::kString:
        return format::Value(Next().raw);
      case TokenKind::kIdent:
        if (Accept("TRUE")) return format::Value(true);
        if (Accept("FALSE")) return format::Value(false);
        return Status::InvalidArgument("expected literal, got '" + token.raw +
                                       "'");
      default:
        return Status::InvalidArgument("expected literal near '" + token.raw +
                                       "'");
    }
  }

  Result<Conjunction> ParseWhere() {
    Conjunction where;
    do {
      SL_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
      if (Accept("IN")) {
        SL_RETURN_NOT_OK(ExpectSymbol("("));
        std::vector<format::Value> values;
        do {
          SL_ASSIGN_OR_RETURN(format::Value v, ParseLiteral());
          values.push_back(std::move(v));
        } while (AcceptSymbol(","));
        SL_RETURN_NOT_OK(ExpectSymbol(")"));
        where.Add(Predicate::In(column, std::move(values)));
        continue;
      }
      CompareOp op;
      if (AcceptSymbol("=")) {
        op = CompareOp::kEq;
      } else if (AcceptSymbol("<=")) {
        op = CompareOp::kLe;
      } else if (AcceptSymbol(">=")) {
        op = CompareOp::kGe;
      } else if (AcceptSymbol("<")) {
        op = CompareOp::kLt;
      } else if (AcceptSymbol(">")) {
        op = CompareOp::kGt;
      } else {
        return Status::InvalidArgument("expected comparison operator near '" +
                                       Peek().raw + "'");
      }
      SL_ASSIGN_OR_RETURN(format::Value literal, ParseLiteral());
      where.Add(Predicate{column, op, std::move(literal), {}});
    } while (Accept("AND"));
    return where;
  }

  Status ParseSelectItem(SqlStatement* statement) {
    QuerySpec& spec = statement->select;
    if (AcceptSymbol("*")) return Status::OK();  // all columns

    static const std::pair<std::string_view, AggregateSpec::Func> kAggs[] = {
        {"COUNT", AggregateSpec::Func::kCount},
        {"SUM", AggregateSpec::Func::kSum},
        {"MIN", AggregateSpec::Func::kMin},
        {"MAX", AggregateSpec::Func::kMax},
        {"AVG", AggregateSpec::Func::kAvg},
    };
    for (const auto& [name, func] : kAggs) {
      if (Peek().kind == TokenKind::kIdent && Peek().text == name &&
          tokens_[pos_ + 1].kind == TokenKind::kSymbol &&
          tokens_[pos_ + 1].text == "(") {
        Next();  // agg name
        Next();  // (
        AggregateSpec agg;
        agg.func = func;
        if (AcceptSymbol("*")) {
          if (func != AggregateSpec::Func::kCount) {
            return Status::InvalidArgument("only COUNT accepts *");
          }
          agg.alias = "count";
        } else {
          SL_ASSIGN_OR_RETURN(agg.column, ExpectIdent());
          std::string lower_name(name);
          std::transform(lower_name.begin(), lower_name.end(),
                         lower_name.begin(), ::tolower);
          agg.alias = lower_name + "(" + agg.column + ")";
        }
        SL_RETURN_NOT_OK(ExpectSymbol(")"));
        if (Accept("AS")) {
          SL_ASSIGN_OR_RETURN(agg.alias, ExpectIdent());
        }
        spec.aggregates.push_back(std::move(agg));
        return Status::OK();
      }
    }
    // Plain column (optionally aliased — alias ignored for projections).
    SL_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
    if (Accept("AS")) {
      SL_ASSIGN_OR_RETURN([[maybe_unused]] std::string alias, ExpectIdent());
    }
    spec.projection.push_back(std::move(column));
    return Status::OK();
  }

  Status ParseSelect(SqlStatement* statement) {
    do {
      SL_RETURN_NOT_OK(ParseSelectItem(statement));
    } while (AcceptSymbol(","));
    SL_RETURN_NOT_OK(Expect("FROM"));
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    if (Accept("WHERE")) {
      SL_ASSIGN_OR_RETURN(statement->select.where, ParseWhere());
    }
    if (Accept("GROUP")) {
      SL_RETURN_NOT_OK(Expect("BY"));
      do {
        SL_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
        statement->select.group_by.push_back(std::move(column));
      } while (AcceptSymbol(","));
    }
    if (Accept("ORDER")) {
      SL_RETURN_NOT_OK(Expect("BY"));
      SL_ASSIGN_OR_RETURN(statement->select.order_by, ExpectIdent());
      if (Accept("DESC")) {
        statement->select.order_descending = true;
      } else {
        Accept("ASC");
      }
    }
    if (Accept("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::InvalidArgument("LIMIT needs an integer");
      }
      statement->select.limit = std::stoull(Next().text);
    }
    // GROUP BY columns are part of the aggregate output; a projection of
    // the same names is implied and must not also be requested.
    if (!statement->select.aggregates.empty() &&
        !statement->select.projection.empty()) {
      // Allow "SELECT province, COUNT(*) ... GROUP BY province": drop
      // projections that are group-by columns.
      auto& projection = statement->select.projection;
      auto& groups = statement->select.group_by;
      projection.erase(
          std::remove_if(projection.begin(), projection.end(),
                         [&](const std::string& column) {
                           return std::find(groups.begin(), groups.end(),
                                            column) != groups.end();
                         }),
          projection.end());
      if (!projection.empty()) {
        return Status::InvalidArgument(
            "non-aggregated column '" + projection.front() +
            "' must appear in GROUP BY");
      }
    }
    return Status::OK();
  }

  Status ParseInsert(SqlStatement* statement) {
    SL_RETURN_NOT_OK(Expect("INTO"));
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    SL_RETURN_NOT_OK(Expect("VALUES"));
    do {
      SL_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<format::Value> row;
      do {
        SL_ASSIGN_OR_RETURN(format::Value v, ParseLiteral());
        row.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SL_RETURN_NOT_OK(ExpectSymbol(")"));
      statement->insert_rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseDelete(SqlStatement* statement) {
    SL_RETURN_NOT_OK(Expect("FROM"));
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    if (Accept("WHERE")) {
      SL_ASSIGN_OR_RETURN(statement->where, ParseWhere());
    }
    return Status::OK();
  }

  Status ParseUpdate(SqlStatement* statement) {
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    SL_RETURN_NOT_OK(Expect("SET"));
    SL_ASSIGN_OR_RETURN(statement->set_column, ExpectIdent());
    SL_RETURN_NOT_OK(ExpectSymbol("="));
    SL_ASSIGN_OR_RETURN(statement->set_value, ParseLiteral());
    if (Accept("WHERE")) {
      SL_ASSIGN_OR_RETURN(statement->where, ParseWhere());
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace streamlake::query
