#include "query/sql_parser.h"

#include <algorithm>
#include <cctype>

namespace streamlake::query {

namespace {

enum class TokenKind {
  kIdent,    // bare word (keywords resolved by comparison)
  kInteger,
  kDouble,
  kString,   // 'quoted'
  kSymbol,   // ( ) , * . = != <> <= >= < >
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // uppercased for idents; verbatim for strings
  std::string raw;   // original spelling
  size_t pos = 0;    // byte offset into the input
};

/// Words that terminate a table-alias position (so `FROM t WHERE ...`
/// never reads WHERE as an alias).
bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "SELECT", "FROM",  "WHERE",  "GROUP", "ORDER", "BY",     "LIMIT",
      "JOIN",   "INNER", "ON",     "AS",    "AND",   "BETWEEN", "IN",
      "EXISTS", "SET",   "VALUES", "ASC",   "DESC",  "INTO"};
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < n && input_[i + 1] == '-') {
        while (i < n && input_[i] != '\n') ++i;  // -- comment
        continue;
      }
      if (c == '\'') {
        size_t end = input_.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument(
              "unterminated string literal at position " + std::to_string(i));
        }
        Token token;
        token.kind = TokenKind::kString;
        token.text = input_.substr(i + 1, end - i - 1);
        token.raw = token.text;
        token.pos = i;
        tokens.push_back(std::move(token));
        i = end + 1;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t start = i;
        if (c == '-') ++i;
        bool is_double = false;
        while (i < n && (std::isdigit(static_cast<unsigned char>(input_[i])) ||
                         input_[i] == '.')) {
          if (input_[i] == '.') is_double = true;
          ++i;
        }
        Token token;
        token.kind = is_double ? TokenKind::kDouble : TokenKind::kInteger;
        token.text = input_.substr(start, i - start);
        token.raw = token.text;
        token.pos = start;
        tokens.push_back(std::move(token));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(input_[i])) ||
                         input_[i] == '_')) {
          ++i;
        }
        Token token;
        token.kind = TokenKind::kIdent;
        token.raw = input_.substr(start, i - start);
        token.text = token.raw;
        token.pos = start;
        std::transform(token.text.begin(), token.text.end(),
                       token.text.begin(), ::toupper);
        tokens.push_back(std::move(token));
        continue;
      }
      // Symbols, including two-character comparators (<= >= != <>).
      if (((c == '<' || c == '>' || c == '!') && i + 1 < n &&
           input_[i + 1] == '=') ||
          (c == '<' && i + 1 < n && input_[i + 1] == '>')) {
        tokens.push_back(Token{TokenKind::kSymbol, input_.substr(i, 2),
                               input_.substr(i, 2), i});
        i += 2;
        continue;
      }
      if (std::string("(),*.=<>").find(c) != std::string::npos) {
        tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c),
                               std::string(1, c), i});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in SQL at position " +
                                     std::to_string(i));
    }
    Token end;
    end.pos = n;
    tokens.push_back(std::move(end));
    return tokens;
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> Parse() {
    SqlStatement statement;
    if (Accept("SELECT")) {
      statement.kind = SqlStatement::Kind::kSelect;
      SL_RETURN_NOT_OK(ParseSelect(&statement));
    } else if (Accept("INSERT")) {
      statement.kind = SqlStatement::Kind::kInsert;
      SL_RETURN_NOT_OK(ParseInsert(&statement));
    } else if (Accept("DELETE")) {
      statement.kind = SqlStatement::Kind::kDelete;
      SL_RETURN_NOT_OK(ParseDelete(&statement));
    } else if (Accept("UPDATE")) {
      statement.kind = SqlStatement::Kind::kUpdate;
      SL_RETURN_NOT_OK(ParseUpdate(&statement));
    } else {
      return ErrorHere("expected SELECT/INSERT/DELETE/UPDATE");
    }
    if (Peek().kind != TokenKind::kEnd) {
      return ErrorHere("trailing tokens after statement");
    }
    return statement;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t at = pos_ + ahead;
    return tokens_[std::min(at, tokens_.size() - 1)];
  }
  const Token& Next() { return tokens_[pos_++]; }

  /// Build an InvalidArgument pointing at the current token and its byte
  /// position, so callers can locate the offending input.
  Status ErrorHere(const std::string& msg) const {
    const Token& t = Peek();
    if (t.kind == TokenKind::kEnd) {
      return Status::InvalidArgument(msg + " at end of input (position " +
                                     std::to_string(t.pos) + ")");
    }
    return Status::InvalidArgument(msg + " near '" + t.raw +
                                   "' at position " + std::to_string(t.pos));
  }

  bool Accept(std::string_view keyword) {
    if (Peek().kind == TokenKind::kIdent && Peek().text == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(std::string_view keyword) {
    if (!Accept(keyword)) {
      return ErrorHere("expected " + std::string(keyword));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view symbol) {
    if (!AcceptSymbol(symbol)) {
      return ErrorHere("expected '" + std::string(symbol) + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected identifier");
    }
    return Next().raw;
  }

  /// column or alias.column, returned in its original spelling.
  Result<std::string> ParseColumnRef() {
    SL_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    if (AcceptSymbol(".")) {
      SL_ASSIGN_OR_RETURN(std::string field, ExpectIdent());
      return name + "." + field;
    }
    return name;
  }

  /// Optional table alias: `AS name`, or a bare non-keyword identifier.
  /// A bare identifier at the very end of the input is NOT an alias —
  /// an alias nothing can reference is indistinguishable from trailing
  /// garbage (`SELECT * FROM t garbage`), which must stay diagnosed.
  Result<std::string> OptionalAlias(const std::string& fallback) {
    if (Accept("AS")) return ExpectIdent();
    if (Peek().kind == TokenKind::kIdent && !IsKeyword(Peek().text) &&
        Peek(1).kind != TokenKind::kEnd) {
      return Next().raw;
    }
    return fallback;
  }

  /// True when the upcoming tokens are `= colref` (a column-to-column
  /// comparison, i.e. a correlation) rather than `= literal`.
  bool PeekCorrelation() const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == "=" &&
           Peek(1).kind == TokenKind::kIdent && Peek(1).text != "TRUE" &&
           Peek(1).text != "FALSE";
  }

  Result<format::Value> ParseLiteral() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInteger: {
        int64_t v = std::stoll(Next().text);
        return format::Value(v);
      }
      case TokenKind::kDouble:
        return format::Value(std::stod(Next().text));
      case TokenKind::kString:
        return format::Value(Next().raw);
      case TokenKind::kIdent:
        if (Accept("TRUE")) return format::Value(true);
        if (Accept("FALSE")) return format::Value(false);
        return ErrorHere("expected literal");
      default:
        return ErrorHere("expected literal");
    }
  }

  /// Everything after the column of a literal predicate: comparison
  /// operator + literal, IN literal list, or BETWEEN lo AND hi (desugared
  /// to >= lo AND <= hi).
  Status ParsePredicateTail(const std::string& column, Conjunction* where) {
    if (Accept("IN")) {
      SL_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<format::Value> values;
      do {
        SL_ASSIGN_OR_RETURN(format::Value v, ParseLiteral());
        values.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SL_RETURN_NOT_OK(ExpectSymbol(")"));
      where->Add(Predicate::In(column, std::move(values)));
      return Status::OK();
    }
    if (Accept("BETWEEN")) {
      SL_ASSIGN_OR_RETURN(format::Value lo, ParseLiteral());
      SL_RETURN_NOT_OK(Expect("AND"));
      SL_ASSIGN_OR_RETURN(format::Value hi, ParseLiteral());
      where->Add(Predicate::Ge(column, std::move(lo)));
      where->Add(Predicate::Le(column, std::move(hi)));
      return Status::OK();
    }
    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("!=") || AcceptSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return ErrorHere("expected comparison operator");
    }
    SL_ASSIGN_OR_RETURN(format::Value literal, ParseLiteral());
    where->Add(Predicate{column, op, std::move(literal), {}});
    return Status::OK();
  }

  /// `col IN (SELECT col FROM t [alias] [WHERE literal-preds])`, the
  /// SELECT keyword already consumed. Desugars to a semi join.
  Status ParseInSubquery(const std::string& outer_column,
                         std::vector<JoinSpec>* joins) {
    JoinSpec join;
    join.kind = JoinSpec::Kind::kSemi;
    join.left_key = outer_column;
    SL_ASSIGN_OR_RETURN(join.right_key, ParseColumnRef());
    SL_RETURN_NOT_OK(Expect("FROM"));
    SL_ASSIGN_OR_RETURN(join.table, ExpectIdent());
    SL_ASSIGN_OR_RETURN(join.alias, OptionalAlias(join.table));
    if (Accept("WHERE")) {
      do {
        SL_ASSIGN_OR_RETURN(std::string column, ParseColumnRef());
        if (PeekCorrelation()) {
          return ErrorHere("correlated IN subqueries are not supported");
        }
        SL_RETURN_NOT_OK(ParsePredicateTail(column, &join.where));
      } while (Accept("AND"));
    }
    joins->push_back(std::move(join));
    return Status::OK();
  }

  /// `EXISTS (SELECT ... FROM t [alias] WHERE ...)`, the EXISTS and `(`
  /// already consumed. Requires exactly one correlation `a.x = b.y` with
  /// both sides qualified; other conjuncts become build-side filters.
  Status ParseExistsSubquery(std::vector<JoinSpec>* joins) {
    SL_RETURN_NOT_OK(Expect("SELECT"));
    if (!AcceptSymbol("*")) {
      SL_ASSIGN_OR_RETURN([[maybe_unused]] std::string ignored,
                          ParseColumnRef());
    }
    SL_RETURN_NOT_OK(Expect("FROM"));
    JoinSpec join;
    join.kind = JoinSpec::Kind::kSemi;
    SL_ASSIGN_OR_RETURN(join.table, ExpectIdent());
    SL_ASSIGN_OR_RETURN(join.alias, OptionalAlias(join.table));
    SL_RETURN_NOT_OK(Expect("WHERE"));
    bool have_correlation = false;
    do {
      SL_ASSIGN_OR_RETURN(std::string column, ParseColumnRef());
      if (!PeekCorrelation()) {
        SL_RETURN_NOT_OK(ParsePredicateTail(column, &join.where));
        continue;
      }
      Next();  // =
      SL_ASSIGN_OR_RETURN(std::string rhs, ParseColumnRef());
      if (have_correlation) {
        return ErrorHere("EXISTS subquery supports a single correlation");
      }
      have_correlation = true;
      // The side qualified with the subquery's alias (or table name) is
      // the build key; the other side belongs to the outer query.
      auto qualifier = [](const std::string& ref) {
        size_t dot = ref.find('.');
        return dot == std::string::npos ? std::string() : ref.substr(0, dot);
      };
      bool lhs_inner = qualifier(column) == join.alias ||
                       qualifier(column) == join.table;
      bool rhs_inner =
          qualifier(rhs) == join.alias || qualifier(rhs) == join.table;
      if (lhs_inner == rhs_inner) {
        return Status::InvalidArgument(
            "EXISTS correlation must compare one subquery column with one "
            "outer column, both alias-qualified: " +
            column + " = " + rhs);
      }
      join.right_key = lhs_inner ? column : rhs;
      join.left_key = lhs_inner ? rhs : column;
    } while (Accept("AND"));
    if (!have_correlation) {
      return Status::InvalidArgument(
          "EXISTS subquery needs a correlation predicate joining it to the "
          "outer query");
    }
    joins->push_back(std::move(join));
    return Status::OK();
  }

  /// WHERE conjunction. `joins` is non-null only for SELECT, where
  /// IN (SELECT ...) / EXISTS terms desugar into semi joins; DELETE and
  /// UPDATE predicates are serialized into commits and must stay plain.
  Status ParseWhere(Conjunction* where, std::vector<JoinSpec>* joins) {
    do {
      if (Peek().kind == TokenKind::kIdent && Peek().text == "EXISTS") {
        if (joins == nullptr) {
          return ErrorHere(
              "subqueries are only supported in SELECT statements");
        }
        Next();  // EXISTS
        SL_RETURN_NOT_OK(ExpectSymbol("("));
        SL_RETURN_NOT_OK(ParseExistsSubquery(joins));
        SL_RETURN_NOT_OK(ExpectSymbol(")"));
        continue;
      }
      SL_ASSIGN_OR_RETURN(std::string column, ParseColumnRef());
      if (Peek().kind == TokenKind::kIdent && Peek().text == "IN" &&
          Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(" &&
          Peek(2).kind == TokenKind::kIdent && Peek(2).text == "SELECT") {
        if (joins == nullptr) {
          return ErrorHere(
              "subqueries are only supported in SELECT statements");
        }
        Next();  // IN
        Next();  // (
        Next();  // SELECT
        SL_RETURN_NOT_OK(ParseInSubquery(column, joins));
        SL_RETURN_NOT_OK(ExpectSymbol(")"));
        continue;
      }
      SL_RETURN_NOT_OK(ParsePredicateTail(column, where));
    } while (Accept("AND"));
    return Status::OK();
  }

  Status ParseSelectItem(SqlStatement* statement) {
    QuerySpec& spec = statement->select;
    if (AcceptSymbol("*")) return Status::OK();  // all columns

    static const std::pair<std::string_view, AggregateSpec::Func> kAggs[] = {
        {"COUNT", AggregateSpec::Func::kCount},
        {"SUM", AggregateSpec::Func::kSum},
        {"MIN", AggregateSpec::Func::kMin},
        {"MAX", AggregateSpec::Func::kMax},
        {"AVG", AggregateSpec::Func::kAvg},
    };
    for (const auto& [name, func] : kAggs) {
      if (Peek().kind == TokenKind::kIdent && Peek().text == name &&
          Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(") {
        Next();  // agg name
        Next();  // (
        AggregateSpec agg;
        agg.func = func;
        if (AcceptSymbol("*")) {
          if (func != AggregateSpec::Func::kCount) {
            return Status::InvalidArgument("only COUNT accepts *");
          }
          agg.alias = "count";
        } else {
          SL_ASSIGN_OR_RETURN(agg.column, ParseColumnRef());
          std::string lower_name(name);
          std::transform(lower_name.begin(), lower_name.end(),
                         lower_name.begin(), ::tolower);
          agg.alias = lower_name + "(" + agg.column + ")";
        }
        SL_RETURN_NOT_OK(ExpectSymbol(")"));
        if (Accept("AS")) {
          SL_ASSIGN_OR_RETURN(agg.alias, ExpectIdent());
        }
        spec.aggregates.push_back(std::move(agg));
        return Status::OK();
      }
    }
    // Plain column (optionally aliased — alias ignored for projections).
    SL_ASSIGN_OR_RETURN(std::string column, ParseColumnRef());
    if (Accept("AS")) {
      SL_ASSIGN_OR_RETURN([[maybe_unused]] std::string alias, ExpectIdent());
    }
    spec.projection.push_back(std::move(column));
    return Status::OK();
  }

  Status ParseSelect(SqlStatement* statement) {
    do {
      SL_RETURN_NOT_OK(ParseSelectItem(statement));
    } while (AcceptSymbol(","));
    SL_RETURN_NOT_OK(Expect("FROM"));
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    SL_ASSIGN_OR_RETURN(statement->table_alias,
                        OptionalAlias(statement->table));
    while (true) {
      if (Accept("INNER")) {
        SL_RETURN_NOT_OK(Expect("JOIN"));
      } else if (!Accept("JOIN")) {
        break;
      }
      JoinSpec join;
      join.kind = JoinSpec::Kind::kInner;
      SL_ASSIGN_OR_RETURN(join.table, ExpectIdent());
      SL_ASSIGN_OR_RETURN(join.alias, OptionalAlias(join.table));
      SL_RETURN_NOT_OK(Expect("ON"));
      SL_ASSIGN_OR_RETURN(join.left_key, ParseColumnRef());
      SL_RETURN_NOT_OK(ExpectSymbol("="));
      SL_ASSIGN_OR_RETURN(join.right_key, ParseColumnRef());
      statement->joins.push_back(std::move(join));
    }
    if (Accept("WHERE")) {
      SL_RETURN_NOT_OK(
          ParseWhere(&statement->select.where, &statement->joins));
    }
    if (Accept("GROUP")) {
      SL_RETURN_NOT_OK(Expect("BY"));
      do {
        SL_ASSIGN_OR_RETURN(std::string column, ParseColumnRef());
        statement->select.group_by.push_back(std::move(column));
      } while (AcceptSymbol(","));
    }
    if (Accept("ORDER")) {
      SL_RETURN_NOT_OK(Expect("BY"));
      SL_ASSIGN_OR_RETURN(statement->select.order_by, ParseColumnRef());
      if (Accept("DESC")) {
        statement->select.order_descending = true;
      } else {
        Accept("ASC");
      }
    }
    if (Accept("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return ErrorHere("LIMIT needs an integer");
      }
      statement->select.limit = std::stoull(Next().text);
    }
    // GROUP BY columns are part of the aggregate output; a projection of
    // the same names is implied and must not also be requested.
    if (!statement->select.aggregates.empty() &&
        !statement->select.projection.empty()) {
      // Allow "SELECT province, COUNT(*) ... GROUP BY province": drop
      // projections that are group-by columns.
      auto& projection = statement->select.projection;
      auto& groups = statement->select.group_by;
      projection.erase(
          std::remove_if(projection.begin(), projection.end(),
                         [&](const std::string& column) {
                           return std::find(groups.begin(), groups.end(),
                                            column) != groups.end();
                         }),
          projection.end());
      if (!projection.empty()) {
        return Status::InvalidArgument(
            "non-aggregated column '" + projection.front() +
            "' must appear in GROUP BY");
      }
    }
    return Status::OK();
  }

  Status ParseInsert(SqlStatement* statement) {
    SL_RETURN_NOT_OK(Expect("INTO"));
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    SL_RETURN_NOT_OK(Expect("VALUES"));
    do {
      SL_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<format::Value> row;
      do {
        SL_ASSIGN_OR_RETURN(format::Value v, ParseLiteral());
        row.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SL_RETURN_NOT_OK(ExpectSymbol(")"));
      statement->insert_rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseDelete(SqlStatement* statement) {
    SL_RETURN_NOT_OK(Expect("FROM"));
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    if (Accept("WHERE")) {
      SL_RETURN_NOT_OK(ParseWhere(&statement->where, nullptr));
    }
    return Status::OK();
  }

  Status ParseUpdate(SqlStatement* statement) {
    SL_ASSIGN_OR_RETURN(statement->table, ExpectIdent());
    SL_RETURN_NOT_OK(Expect("SET"));
    SL_ASSIGN_OR_RETURN(statement->set_column, ExpectIdent());
    SL_RETURN_NOT_OK(ExpectSymbol("="));
    SL_ASSIGN_OR_RETURN(statement->set_value, ParseLiteral());
    if (Accept("WHERE")) {
      SL_RETURN_NOT_OK(ParseWhere(&statement->where, nullptr));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace streamlake::query
