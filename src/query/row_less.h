#ifndef STREAMLAKE_QUERY_ROW_LESS_H_
#define STREAMLAKE_QUERY_ROW_LESS_H_

#include <vector>

#include "format/types.h"

namespace streamlake::query {

/// Strict weak ordering over single values via format::CompareValues.
/// Values must share a type (CompareValues checks); the planner enforces
/// that for join keys before any map is built.
struct ValueLess {
  bool operator()(const format::Value& a, const format::Value& b) const {
    return format::CompareValues(a, b) < 0;
  }
};

/// Lexicographic strict weak ordering over value vectors — the one row
/// comparator shared by the group-by state map, ORDER BY, and the hash-join
/// key maps (shorter prefix sorts first).
struct RowLess {
  bool operator()(const std::vector<format::Value>& a,
                  const std::vector<format::Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = format::CompareValues(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_ROW_LESS_H_
