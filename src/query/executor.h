#ifndef STREAMLAKE_QUERY_EXECUTOR_H_
#define STREAMLAKE_QUERY_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace streamlake::query {

/// Aggregate functions supported by the pushdown executor. COUNT is what
/// the paper's DAU query uses (Fig. 13).
struct AggregateSpec {
  enum class Func { kCount, kSum, kMin, kMax, kAvg };
  Func func = Func::kCount;
  std::string column;  // empty for COUNT(*)
  std::string alias;

  static AggregateSpec CountStar(std::string alias = "count");
  static AggregateSpec Sum(std::string column, std::string alias = "");
  static AggregateSpec Min(std::string column, std::string alias = "");
  static AggregateSpec Max(std::string column, std::string alias = "");
  static AggregateSpec Avg(std::string column, std::string alias = "");
};

/// A filter + (optional) GROUP BY + aggregate query, e.g. Fig. 13:
///   SELECT COUNT(*) FROM t WHERE url = ... AND start_time in [a, b)
///   GROUP BY province
struct QuerySpec {
  Conjunction where;
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;
  /// For non-aggregate queries: columns to return (empty = all).
  std::vector<std::string> projection;
  /// Sort the result rows by this output column (by name; applies to
  /// aggregate results too). Empty = no ordering.
  std::string order_by;
  bool order_descending = false;
  /// Keep only the first `limit` result rows (0 = unlimited).
  uint64_t limit = 0;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<format::Row> rows;
  // Execution counters (fed into the per-query metrics of the benches).
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
};

/// \brief In-memory relational executor used both at the "compute engine"
/// side and storage-side when computation pushdown is enabled.
class Executor {
 public:
  /// Run `spec` over `rows`; append results/counters into `result`
  /// (callable once per file/fragment, then Finalize).
  Executor(const format::Schema& schema, const QuerySpec& spec);

  Status Consume(const std::vector<format::Row>& rows);

  /// Fold another executor's partial state into this one. Both must have
  /// been built from the same schema and spec; `other` is consumed. Used
  /// by the parallel Select path: each scan job runs its own fragment
  /// executor, then the query thread merges fragments in file order and
  /// Finalizes once, so ORDER BY / LIMIT see the complete row set and the
  /// result matches the serial path. Merging is order-insensitive except
  /// for floating-point SUM/AVG rounding, hence the deterministic file
  /// order on the caller side.
  Status MergeFrom(Executor&& other);

  /// Produce the final result. For aggregates, one row per group.
  Result<QueryResult> Finalize();

 private:
  struct GroupState {
    std::vector<int64_t> counts;
    std::vector<double> sums;
    std::vector<std::optional<format::Value>> mins;
    std::vector<std::optional<format::Value>> maxs;
  };

  const format::Schema schema_;
  const QuerySpec spec_;
  std::vector<int> group_cols_;
  std::vector<int> agg_cols_;
  std::vector<int> projection_cols_;
  std::map<std::vector<format::Value>, GroupState,
           bool (*)(const std::vector<format::Value>&,
                    const std::vector<format::Value>&)>
      groups_;
  std::vector<format::Row> plain_rows_;
  uint64_t rows_scanned_ = 0;
  uint64_t rows_matched_ = 0;
  Status init_status_;
};

/// Convenience single-shot execution.
Result<QueryResult> Execute(const format::Schema& schema,
                            const std::vector<format::Row>& rows,
                            const QuerySpec& spec);

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_EXECUTOR_H_
