#ifndef STREAMLAKE_QUERY_EXECUTOR_H_
#define STREAMLAKE_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "query/operators.h"
#include "query/spec.h"

namespace streamlake::query {

/// \brief In-memory relational executor used both at the "compute engine"
/// side and storage-side when computation pushdown is enabled. A thin
/// facade over the composable operators (filter -> project | aggregate ->
/// sort/limit): it keeps the scan-fragment contract the parallel Select
/// path relies on (Consume per fragment, MergeFrom in deterministic file
/// order, Finalize once).
class Executor {
 public:
  /// Run `spec` over `rows`; append results/counters into `result`
  /// (callable once per file/fragment, then Finalize).
  Executor(const format::Schema& schema, const QuerySpec& spec);

  Status Consume(const std::vector<format::Row>& rows);

  /// Consume rows the scan already filtered column-at-a-time: `rows` are
  /// the matches out of `scanned` visible rows, so the WHERE clause is not
  /// re-evaluated (late-materialized rows only carry the required columns).
  Status ConsumeFiltered(std::vector<format::Row> rows, uint64_t scanned);

  /// Fold another executor's partial state into this one. Both must have
  /// been built from the same schema and spec; `other` is consumed. Used
  /// by the parallel Select path: each scan job runs its own fragment
  /// executor, then the query thread merges fragments in file order and
  /// Finalizes once, so ORDER BY / LIMIT see the complete row set and the
  /// result matches the serial path. Merging is order-insensitive except
  /// for floating-point SUM/AVG rounding, hence the deterministic file
  /// order on the caller side.
  Status MergeFrom(Executor&& other);

  /// Produce the final result. For aggregates, one row per group.
  Result<QueryResult> Finalize();

 private:
  const format::Schema schema_;
  const QuerySpec spec_;
  ProjectOperator project_;
  AggregateOperator aggregate_;
  std::vector<format::Row> plain_rows_;
  uint64_t rows_scanned_ = 0;
  uint64_t rows_matched_ = 0;
  Status init_status_;
};

/// Convenience single-shot execution.
Result<QueryResult> Execute(const format::Schema& schema,
                            const std::vector<format::Row>& rows,
                            const QuerySpec& spec);

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_EXECUTOR_H_
