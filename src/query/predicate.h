#ifndef STREAMLAKE_QUERY_PREDICATE_H_
#define STREAMLAKE_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "format/lakefile.h"
#include "format/schema.h"
#include "format/types.h"

namespace streamlake::query {

/// Comparison operators of pushdown predicates. The set matches the
/// query-tree framework of Section VI-B: {<=, >=, <, >, =, IN}, plus the
/// != the SQL grammar needs and the IS [NOT] NULL tests. Tag values are
/// persisted in merge-on-read delete commits, so existing encodings must
/// keep their positions; new operators append at the end.
enum class CompareOp { kLe, kGe, kLt, kGt, kEq, kIn, kNe, kIsNull, kIsNotNull };

const char* CompareOpName(CompareOp op);

/// One predicate: (attribute, operator, literal) — e.g.
/// (start_time, >=, 1656806400) from the DAU query of Fig. 13.
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  format::Value literal;
  std::vector<format::Value> in_list;  // kIn only

  static Predicate Le(std::string column, format::Value v);
  static Predicate Ge(std::string column, format::Value v);
  static Predicate Lt(std::string column, format::Value v);
  static Predicate Gt(std::string column, format::Value v);
  static Predicate Eq(std::string column, format::Value v);
  static Predicate Ne(std::string column, format::Value v);
  static Predicate In(std::string column, std::vector<format::Value> values);
  static Predicate IsNull(std::string column);
  static Predicate IsNotNull(std::string column);

  /// Evaluate against one value of the predicate's column.
  bool Matches(const format::Value& v) const;

  std::string ToString() const;

  void EncodeTo(Bytes* dst) const;
  static Result<Predicate> DecodeFrom(Decoder* dec);
};

/// Conjunction of predicates (the WHERE clause). An empty conjunction
/// matches everything.
class Conjunction {
 public:
  Conjunction() = default;
  Conjunction(std::initializer_list<Predicate> predicates)
      : predicates_(predicates) {}
  explicit Conjunction(std::vector<Predicate> predicates)
      : predicates_(std::move(predicates)) {}

  void Add(Predicate predicate) { predicates_.push_back(std::move(predicate)); }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  bool empty() const { return predicates_.empty(); }

  /// Row-level evaluation.
  bool Matches(const format::Schema& schema, const format::Row& row) const;

  /// Stats-level pruning: can any row with `column` in [min, max] match?
  /// Conservative — returns true when unsure. `row_count` (the number of
  /// rows the stats describe, when known) enables IS [NOT] NULL pruning
  /// against the extended null_count stat.
  bool MayMatchStats(const std::string& column,
                     const format::ColumnStats& stats,
                     uint64_t row_count = 0) const;

  std::string ToString() const;

  /// Serialization (merge-on-read delete predicates persist in commits).
  void EncodeTo(Bytes* dst) const;
  static Result<Conjunction> DecodeFrom(Decoder* dec);

 private:
  std::vector<Predicate> predicates_;
};

/// May a single predicate match some value in [min, max]?
bool PredicateMayMatchRange(const Predicate& predicate,
                            const format::Value& min,
                            const format::Value& max);

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_PREDICATE_H_
