#include "query/plan.h"

#include <optional>
#include <utility>

namespace streamlake::query {

namespace {

/// `alias.column` → {alias, column}; unqualified → {"", column}.
std::pair<std::string, std::string> SplitQualifier(const std::string& name) {
  size_t dot = name.find('.');
  if (dot == std::string::npos) return {"", name};
  return {name.substr(0, dot), name.substr(dot + 1)};
}

bool RefMatches(const PlanTableRef& ref, const std::string& qualifier) {
  return qualifier == ref.alias || qualifier == ref.table;
}

/// Column-name resolution over the tables of one statement. `contributes`
/// marks refs whose columns appear in the join output (the FROM table and
/// inner joins; semi joins only filter).
class Resolver {
 public:
  Resolver(const std::vector<PlanTableRef>& refs,
           std::vector<bool> contributes)
      : refs_(refs), contributes_(std::move(contributes)) {}

  /// Resolve to any referenced table (used to route WHERE predicates to
  /// per-table scan filters; semi-joined tables are legal targets).
  Result<std::pair<size_t, std::string>> ResolveAnyRef(
      const std::string& name) const {
    auto [qualifier, field] = SplitQualifier(name);
    if (!qualifier.empty()) {
      for (size_t i = 0; i < refs_.size(); ++i) {
        if (!RefMatches(refs_[i], qualifier)) continue;
        if (refs_[i].schema->FieldIndex(field) < 0) {
          return Status::InvalidArgument("unknown column '" + name + "'");
        }
        return std::make_pair(i, field);
      }
      return Status::InvalidArgument("unknown table alias '" + qualifier +
                                     "' in column '" + name + "'");
    }
    std::optional<size_t> found;
    for (size_t i = 0; i < refs_.size(); ++i) {
      if (refs_[i].schema->FieldIndex(field) < 0) continue;
      if (found) {
        return Status::InvalidArgument("ambiguous column '" + name + "'");
      }
      found = i;
    }
    if (!found) {
      return Status::InvalidArgument("unknown column '" + name + "'");
    }
    return std::make_pair(*found, field);
  }

  /// Resolve an output column (projection / GROUP BY / aggregate / join
  /// probe key) to its qualified `alias.field` spelling. Only
  /// contributing tables qualify.
  Result<std::string> ResolveOutput(const std::string& name) const {
    SL_ASSIGN_OR_RETURN(auto resolved, ResolveAnyRef(name));
    auto [ref_idx, field] = resolved;
    if (!contributes_[ref_idx]) {
      return Status::InvalidArgument(
          "column '" + name + "' references semi-joined table '" +
          refs_[ref_idx].alias + "' which has no output columns");
    }
    return refs_[ref_idx].alias + "." + field;
  }

  const PlanTableRef& ref(size_t i) const { return refs_[i]; }
  size_t num_refs() const { return refs_.size(); }

 private:
  const std::vector<PlanTableRef>& refs_;
  std::vector<bool> contributes_;
};

format::DataType AggregateOutputType(const AggregateSpec& agg,
                                     const format::Schema& input) {
  switch (agg.func) {
    case AggregateSpec::Func::kCount:
      return format::DataType::kInt64;
    case AggregateSpec::Func::kSum:
    case AggregateSpec::Func::kAvg:
      return format::DataType::kDouble;
    case AggregateSpec::Func::kMin:
    case AggregateSpec::Func::kMax: {
      int idx = input.FieldIndex(agg.column);
      return idx < 0 ? format::DataType::kInt64 : input.field(idx).type;
    }
  }
  return format::DataType::kInt64;
}

format::Schema AggregateOutputSchema(
    const std::vector<std::string>& group_by,
    const std::vector<AggregateSpec>& aggregates,
    const format::Schema& input) {
  std::vector<format::Field> fields;
  for (const std::string& g : group_by) {
    int idx = input.FieldIndex(g);
    fields.push_back(format::Field{
        g, idx < 0 ? format::DataType::kInt64 : input.field(idx).type});
  }
  for (const AggregateSpec& agg : aggregates) {
    fields.push_back(
        format::Field{agg.alias, AggregateOutputType(agg, input)});
  }
  return format::Schema(std::move(fields));
}

format::Schema ProjectOutputSchema(const std::vector<std::string>& columns,
                                   const format::Schema& input) {
  std::vector<format::Field> fields;
  for (const std::string& c : columns) {
    int idx = input.FieldIndex(c);
    fields.push_back(format::Field{
        c, idx < 0 ? format::DataType::kInt64 : input.field(idx).type});
  }
  return format::Schema(std::move(fields));
}

/// Wrap `child` in the aggregate/project + sort/limit chain of `spec`.
/// Column names in `spec` must already be resolved for the child's output
/// schema.
std::unique_ptr<PlanNode> AttachOutputOperators(
    std::unique_ptr<PlanNode> child, const QuerySpec& spec) {
  if (!spec.aggregates.empty()) {
    auto agg = std::make_unique<AggregateNode>();
    agg->group_by = spec.group_by;
    agg->aggregates = spec.aggregates;
    agg->output_schema = AggregateOutputSchema(
        spec.group_by, spec.aggregates, child->output_schema);
    agg->children.push_back(std::move(child));
    child = std::move(agg);
  } else if (!spec.projection.empty()) {
    auto project = std::make_unique<ProjectNode>();
    project->columns = spec.projection;
    project->output_schema =
        ProjectOutputSchema(spec.projection, child->output_schema);
    project->children.push_back(std::move(child));
    child = std::move(project);
  }
  if (!spec.order_by.empty() || spec.limit > 0) {
    auto sort = std::make_unique<SortLimitNode>();
    sort->order_by = spec.order_by;
    sort->order_descending = spec.order_descending;
    sort->limit = spec.limit;
    sort->output_schema = child->output_schema;
    sort->children.push_back(std::move(child));
    child = std::move(sort);
  }
  return child;
}

/// Single-table lowering: strip the table's own qualifier off every
/// column reference; the executor validates names against the table
/// schema at run time (keeping pre-refactor error messages byte-exact).
Result<std::unique_ptr<PlanNode>> PlanSingleTable(
    const SqlStatement& statement, const PlanTableRef& ref) {
  auto strip = [&](const std::string& name) -> Result<std::string> {
    auto [qualifier, field] = SplitQualifier(name);
    if (qualifier.empty()) return name;
    if (!RefMatches(ref, qualifier)) {
      return Status::InvalidArgument("unknown table alias '" + qualifier +
                                     "' in column '" + name + "'");
    }
    return field;
  };

  auto scan = std::make_unique<ScanNode>();
  scan->table = ref.table;
  scan->alias = ref.alias;
  scan->table_index = 0;
  scan->output_schema = *ref.schema;
  for (const Predicate& p : statement.select.where.predicates()) {
    Predicate stripped = p;
    SL_ASSIGN_OR_RETURN(stripped.column, strip(p.column));
    scan->filter.Add(std::move(stripped));
  }

  QuerySpec spec;
  for (const std::string& c : statement.select.projection) {
    SL_ASSIGN_OR_RETURN(std::string name, strip(c));
    spec.projection.push_back(std::move(name));
  }
  for (const std::string& g : statement.select.group_by) {
    SL_ASSIGN_OR_RETURN(std::string name, strip(g));
    spec.group_by.push_back(std::move(name));
  }
  for (const AggregateSpec& agg : statement.select.aggregates) {
    AggregateSpec resolved = agg;
    if (!agg.column.empty()) {
      SL_ASSIGN_OR_RETURN(resolved.column, strip(agg.column));
    }
    spec.aggregates.push_back(std::move(resolved));
  }
  // ORDER BY names an output column (aggregate aliases included), so an
  // unmatched qualifier is left for the executor to diagnose.
  spec.order_by = statement.select.order_by;
  auto [oq, ofield] = SplitQualifier(spec.order_by);
  if (!oq.empty() && RefMatches(ref, oq)) spec.order_by = ofield;
  spec.order_descending = statement.select.order_descending;
  spec.limit = statement.select.limit;

  return AttachOutputOperators(std::move(scan), spec);
}

format::Schema QualifiedSchema(const PlanTableRef& ref) {
  std::vector<format::Field> fields;
  for (const format::Field& f : ref.schema->fields()) {
    fields.push_back(format::Field{ref.alias + "." + f.name, f.type});
  }
  return format::Schema(std::move(fields));
}

Result<std::unique_ptr<PlanNode>> PlanMultiTable(
    const SqlStatement& statement, const std::vector<PlanTableRef>& refs) {
  std::vector<bool> contributes(refs.size(), false);
  contributes[0] = true;
  for (size_t j = 0; j < statement.joins.size(); ++j) {
    contributes[j + 1] = statement.joins[j].kind == JoinSpec::Kind::kInner;
  }
  Resolver resolver(refs, contributes);

  // Route every WHERE predicate to its owning table's scan filter
  // (full pushdown: the scan evaluates it with the unqualified name).
  std::vector<Conjunction> scan_filters(refs.size());
  for (const Predicate& p : statement.select.where.predicates()) {
    SL_ASSIGN_OR_RETURN(auto target, resolver.ResolveAnyRef(p.column));
    Predicate routed = p;
    routed.column = target.second;
    scan_filters[target.first].Add(std::move(routed));
  }
  // Subquery WHERE clauses are scoped to their own table.
  for (size_t j = 0; j < statement.joins.size(); ++j) {
    const JoinSpec& join = statement.joins[j];
    const PlanTableRef& ref = refs[j + 1];
    for (const Predicate& p : join.where.predicates()) {
      auto [qualifier, field] = SplitQualifier(p.column);
      if (!qualifier.empty() && !RefMatches(ref, qualifier)) {
        return Status::InvalidArgument(
            "subquery predicate column '" + p.column +
            "' must reference the subquery table '" + ref.alias + "'");
      }
      if (ref.schema->FieldIndex(field) < 0) {
        return Status::InvalidArgument("unknown column '" + p.column +
                                       "' in subquery on '" + ref.alias +
                                       "'");
      }
      Predicate routed = p;
      routed.column = field;
      scan_filters[j + 1].Add(std::move(routed));
    }
  }

  auto probe_scan = std::make_unique<ScanNode>();
  probe_scan->table = refs[0].table;
  probe_scan->alias = refs[0].alias;
  probe_scan->table_index = 0;
  probe_scan->filter = std::move(scan_filters[0]);
  probe_scan->output_schema = QualifiedSchema(refs[0]);

  std::unique_ptr<PlanNode> probe = std::move(probe_scan);
  for (size_t j = 0; j < statement.joins.size(); ++j) {
    const JoinSpec& join = statement.joins[j];
    const PlanTableRef& ref = refs[j + 1];

    // Classify the ON / correlation keys: exactly one side must belong to
    // the newly joined table, the other to the probe subtree built so far.
    auto build_side = [&](const std::string& key)
        -> std::optional<std::string> {  // unqualified build column
      auto [qualifier, field] = SplitQualifier(key);
      if (!qualifier.empty()) {
        if (!RefMatches(ref, qualifier)) return std::nullopt;
        if (ref.schema->FieldIndex(field) < 0) return std::nullopt;
        return field;
      }
      if (ref.schema->FieldIndex(field) < 0) return std::nullopt;
      return field;
    };
    auto probe_side = [&](const std::string& key)
        -> std::optional<std::string> {  // qualified probe column
      auto [qualifier, field] = SplitQualifier(key);
      for (size_t i = 0; i <= j; ++i) {
        if (!contributes[i]) continue;
        if (!qualifier.empty() && !RefMatches(refs[i], qualifier)) continue;
        if (refs[i].schema->FieldIndex(field) < 0) continue;
        return refs[i].alias + "." + field;
      }
      return std::nullopt;
    };

    std::string build_key;
    std::string probe_key;
    if (join.kind == JoinSpec::Kind::kSemi) {
      // IN / EXISTS desugaring is directional — the left key is the
      // outer column, the right key the subquery's — so there is no
      // symmetric ambiguity to resolve.
      std::optional<std::string> semi_build = build_side(join.right_key);
      std::optional<std::string> semi_probe = probe_side(join.left_key);
      if (!semi_build || !semi_probe) {
        return Status::InvalidArgument(
            "join keys '" + join.left_key + "' = '" + join.right_key +
            "' must reference the joined table '" + ref.alias +
            "' on one side and an earlier table on the other");
      }
      build_key = *semi_build;
      probe_key = *semi_probe;
    } else {
      std::optional<std::string> left_build = build_side(join.left_key);
      std::optional<std::string> right_build = build_side(join.right_key);
      std::optional<std::string> left_probe = probe_side(join.left_key);
      std::optional<std::string> right_probe = probe_side(join.right_key);

      if (right_build && left_probe && !(left_build && right_probe)) {
        build_key = *right_build;
        probe_key = *left_probe;
      } else if (left_build && right_probe && !(right_build && left_probe)) {
        build_key = *left_build;
        probe_key = *right_probe;
      } else if (left_build && right_probe && right_build && left_probe) {
        return Status::InvalidArgument(
            "ambiguous join keys '" + join.left_key + "' = '" +
            join.right_key + "'; qualify them with table aliases");
      } else {
        return Status::InvalidArgument(
            "join keys '" + join.left_key + "' = '" + join.right_key +
            "' must reference the joined table '" + ref.alias +
            "' on one side and an earlier table on the other");
      }
    }

    int probe_col = probe->output_schema.FieldIndex(probe_key);
    int build_col = ref.schema->FieldIndex(build_key);
    // Both resolved above; verify the key types agree, because the
    // value-compare path used by the hash map aborts on mixed types.
    if (probe->output_schema.field(probe_col).type !=
        ref.schema->field(build_col).type) {
      return Status::InvalidArgument(
          "join key type mismatch between '" + probe_key + "' and '" +
          ref.alias + "." + build_key + "'");
    }

    auto build_scan = std::make_unique<ScanNode>();
    build_scan->table = ref.table;
    build_scan->alias = ref.alias;
    build_scan->table_index = j + 1;
    build_scan->filter = std::move(scan_filters[j + 1]);
    build_scan->output_schema = *ref.schema;

    auto node = std::make_unique<HashJoinNode>();
    node->join_kind = join.kind == JoinSpec::Kind::kInner
                          ? HashJoinNode::JoinKind::kInner
                          : HashJoinNode::JoinKind::kSemi;
    node->probe_key = probe_key;
    node->build_key = build_key;
    node->probe_col = probe_col;
    node->build_col = build_col;
    std::vector<format::Field> out_fields = probe->output_schema.fields();
    if (join.kind == JoinSpec::Kind::kInner) {
      const format::Schema qualified = QualifiedSchema(ref);
      for (const format::Field& f : qualified.fields()) {
        out_fields.push_back(f);
      }
    }
    node->output_schema = format::Schema(std::move(out_fields));
    node->children.push_back(std::move(probe));
    node->children.push_back(std::move(build_scan));
    probe = std::move(node);
  }

  // Rewrite the output clauses to qualified names against the join output.
  QuerySpec spec;
  for (const std::string& c : statement.select.projection) {
    SL_ASSIGN_OR_RETURN(std::string name, resolver.ResolveOutput(c));
    spec.projection.push_back(std::move(name));
  }
  for (const std::string& g : statement.select.group_by) {
    SL_ASSIGN_OR_RETURN(std::string name, resolver.ResolveOutput(g));
    spec.group_by.push_back(std::move(name));
  }
  for (const AggregateSpec& agg : statement.select.aggregates) {
    AggregateSpec resolved = agg;
    if (!agg.column.empty()) {
      SL_ASSIGN_OR_RETURN(resolved.column,
                          resolver.ResolveOutput(agg.column));
    }
    spec.aggregates.push_back(std::move(resolved));
  }
  // ORDER BY may name an aggregate alias; otherwise qualify it if it
  // resolves, else leave it for the executor's diagnostic.
  spec.order_by = statement.select.order_by;
  if (!spec.order_by.empty()) {
    bool is_alias = false;
    for (const AggregateSpec& agg : spec.aggregates) {
      if (agg.alias == spec.order_by) is_alias = true;
    }
    if (!is_alias) {
      Result<std::string> resolved = resolver.ResolveOutput(spec.order_by);
      if (resolved.ok()) spec.order_by = *resolved;
    }
  }
  spec.order_descending = statement.select.order_descending;
  spec.limit = statement.select.limit;

  return AttachOutputOperators(std::move(probe), spec);
}

void AppendPlanString(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      *out += "Scan(" + scan.table;
      if (scan.alias != scan.table) *out += " AS " + scan.alias;
      if (!scan.filter.empty()) *out += ", filter: " + scan.filter.ToString();
      *out += ")";
      break;
    }
    case PlanNode::Kind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      *out += "Filter(" + filter.filter.ToString() + ")";
      break;
    }
    case PlanNode::Kind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      *out += "Project(";
      for (size_t i = 0; i < project.columns.size(); ++i) {
        if (i) *out += ", ";
        *out += project.columns[i];
      }
      *out += ")";
      break;
    }
    case PlanNode::Kind::kHashJoin: {
      const auto& join = static_cast<const HashJoinNode&>(node);
      *out += join.join_kind == HashJoinNode::JoinKind::kInner
                  ? "HashJoin(inner, "
                  : "HashJoin(semi, ";
      *out += join.probe_key + " = " + join.build_key + ")";
      break;
    }
    case PlanNode::Kind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      *out += "Aggregate(";
      for (size_t i = 0; i < agg.group_by.size(); ++i) {
        if (i) *out += ", ";
        *out += agg.group_by[i];
      }
      if (!agg.group_by.empty() && !agg.aggregates.empty()) *out += "; ";
      for (size_t i = 0; i < agg.aggregates.size(); ++i) {
        if (i) *out += ", ";
        *out += agg.aggregates[i].alias;
      }
      *out += ")";
      break;
    }
    case PlanNode::Kind::kSortLimit: {
      const auto& sort = static_cast<const SortLimitNode&>(node);
      *out += "SortLimit(";
      if (!sort.order_by.empty()) {
        *out += "order by " + sort.order_by +
                (sort.order_descending ? " desc" : " asc");
      }
      if (sort.limit > 0) {
        if (!sort.order_by.empty()) *out += ", ";
        *out += "limit " + std::to_string(sort.limit);
      }
      *out += ")";
      break;
    }
  }
  *out += "\n";
  for (const auto& child : node.children) {
    AppendPlanString(*child, depth + 1, out);
  }
}

}  // namespace

Result<std::unique_ptr<PlanNode>> PlanSelect(
    const SqlStatement& statement,
    const std::vector<PlanTableRef>& refs) {
  if (statement.kind != SqlStatement::Kind::kSelect) {
    return Status::InvalidArgument("PlanSelect needs a SELECT statement");
  }
  if (refs.size() != statement.joins.size() + 1) {
    return Status::InvalidArgument(
        "planner given " + std::to_string(refs.size()) + " tables for " +
        std::to_string(statement.joins.size() + 1) + " references");
  }
  if (refs.size() == 1) return PlanSingleTable(statement, refs[0]);
  return PlanMultiTable(statement, refs);
}

std::string PlanToString(const PlanNode& root) {
  std::string out;
  AppendPlanString(root, 0, &out);
  return out;
}

}  // namespace streamlake::query
