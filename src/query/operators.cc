#include "query/operators.h"

#include <algorithm>

namespace streamlake::query {

namespace {

double ToDouble(const format::Value& v) {
  switch (format::TypeOf(v)) {
    case format::DataType::kInt64:
      return static_cast<double>(std::get<int64_t>(v));
    case format::DataType::kDouble:
      return std::get<double>(v);
    case format::DataType::kBool:
      return std::get<bool>(v) ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

}  // namespace

Status ProjectOperator::Init(const format::Schema& schema,
                             const std::vector<std::string>& columns) {
  columns_.clear();
  for (const std::string& column : columns) {
    int idx = schema.FieldIndex(column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown projection column " + column);
    }
    columns_.push_back(idx);
  }
  return Status::OK();
}

format::Row ProjectOperator::Apply(const format::Row& row) const {
  format::Row projected;
  projected.fields.reserve(columns_.size());
  for (int col : columns_) {
    projected.fields.push_back(row.fields[col]);
  }
  return projected;
}

Status AggregateOperator::Init(const format::Schema& schema,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggregateSpec>& aggregates) {
  group_by_ = group_by;
  aggregates_ = aggregates;
  group_cols_.clear();
  agg_cols_.clear();
  for (const std::string& column : group_by_) {
    int idx = schema.FieldIndex(column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown group column " + column);
    }
    group_cols_.push_back(idx);
  }
  for (const AggregateSpec& agg : aggregates_) {
    if (agg.column.empty()) {
      agg_cols_.push_back(-1);
    } else {
      int idx = schema.FieldIndex(agg.column);
      if (idx < 0) {
        return Status::InvalidArgument("unknown aggregate column " +
                                       agg.column);
      }
      agg_cols_.push_back(idx);
    }
  }
  return Status::OK();
}

void AggregateOperator::Consume(const format::Row& row) {
  ++rows_consumed_;
  std::vector<format::Value> key;
  key.reserve(group_cols_.size());
  for (int col : group_cols_) key.push_back(row.fields[col]);
  GroupState& state = groups_[key];
  if (state.counts.empty()) {
    state.counts.assign(aggregates_.size(), 0);
    state.sums.assign(aggregates_.size(), 0.0);
    state.mins.assign(aggregates_.size(), std::nullopt);
    state.maxs.assign(aggregates_.size(), std::nullopt);
  }
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    const AggregateSpec& agg = aggregates_[a];
    state.counts[a] += 1;
    if (agg_cols_[a] < 0) continue;
    const format::Value& v = row.fields[agg_cols_[a]];
    if (format::IsNull(v)) continue;  // SQL: aggregates ignore NULLs
    switch (agg.func) {
      case AggregateSpec::Func::kSum:
      case AggregateSpec::Func::kAvg:
        state.sums[a] += ToDouble(v);
        break;
      case AggregateSpec::Func::kMin:
        if (!state.mins[a] || format::CompareValues(v, *state.mins[a]) < 0) {
          state.mins[a] = v;
        }
        break;
      case AggregateSpec::Func::kMax:
        if (!state.maxs[a] || format::CompareValues(v, *state.maxs[a]) > 0) {
          state.maxs[a] = v;
        }
        break;
      case AggregateSpec::Func::kCount:
        break;
    }
  }
}

void AggregateOperator::Merge(AggregateOperator&& other) {
  rows_consumed_ += other.rows_consumed_;
  for (auto& [key, theirs] : other.groups_) {
    auto [it, inserted] = groups_.try_emplace(key, std::move(theirs));
    if (inserted) continue;
    GroupState& mine = it->second;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      mine.counts[a] += theirs.counts[a];
      mine.sums[a] += theirs.sums[a];
      if (theirs.mins[a] &&
          (!mine.mins[a] ||
           format::CompareValues(*theirs.mins[a], *mine.mins[a]) < 0)) {
        mine.mins[a] = std::move(theirs.mins[a]);
      }
      if (theirs.maxs[a] &&
          (!mine.maxs[a] ||
           format::CompareValues(*theirs.maxs[a], *mine.maxs[a]) > 0)) {
        mine.maxs[a] = std::move(theirs.maxs[a]);
      }
    }
  }
}

void AggregateOperator::Finalize(QueryResult* result) {
  for (const std::string& g : group_by_) result->column_names.push_back(g);
  for (const AggregateSpec& agg : aggregates_) {
    result->column_names.push_back(agg.alias);
  }
  // SQL semantics: global aggregation over an empty input yields one row.
  if (groups_.empty() && group_by_.empty()) {
    groups_[{}] = GroupState{
        std::vector<int64_t>(aggregates_.size(), 0),
        std::vector<double>(aggregates_.size(), 0.0),
        std::vector<std::optional<format::Value>>(aggregates_.size()),
        std::vector<std::optional<format::Value>>(aggregates_.size())};
  }
  for (const auto& [key, state] : groups_) {
    format::Row row;
    row.fields = key;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      switch (aggregates_[a].func) {
        case AggregateSpec::Func::kCount:
          row.fields.emplace_back(state.counts[a]);
          break;
        case AggregateSpec::Func::kSum:
          row.fields.emplace_back(state.sums[a]);
          break;
        case AggregateSpec::Func::kAvg:
          row.fields.emplace_back(
              state.counts[a] == 0 ? 0.0 : state.sums[a] / state.counts[a]);
          break;
        case AggregateSpec::Func::kMin:
          row.fields.push_back(
              state.mins[a].value_or(format::Value(int64_t{0})));
          break;
        case AggregateSpec::Func::kMax:
          row.fields.push_back(
              state.maxs[a].value_or(format::Value(int64_t{0})));
          break;
      }
    }
    result->rows.push_back(std::move(row));
  }
}

Status ApplySortLimit(const std::string& order_by, bool descending,
                      uint64_t limit, QueryResult* result) {
  if (!order_by.empty()) {
    int column = -1;
    for (size_t c = 0; c < result->column_names.size(); ++c) {
      if (result->column_names[c] == order_by) {
        column = static_cast<int>(c);
      }
    }
    if (column < 0) {
      return Status::InvalidArgument("unknown ORDER BY column " + order_by);
    }
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const format::Row& a, const format::Row& b) {
                       int cmp = format::CompareValues(a.fields[column],
                                                       b.fields[column]);
                       return descending ? cmp > 0 : cmp < 0;
                     });
  }
  if (limit > 0 && result->rows.size() > limit) {
    result->rows.resize(limit);
  }
  return Status::OK();
}

}  // namespace streamlake::query
