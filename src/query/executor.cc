#include "query/executor.h"

#include <algorithm>

#include "common/metrics.h"

namespace streamlake::query {

namespace {

bool ValueVectorLess(const std::vector<format::Value>& a,
                     const std::vector<format::Value>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int c = format::CompareValues(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

double ToDouble(const format::Value& v) {
  switch (format::TypeOf(v)) {
    case format::DataType::kInt64:
      return static_cast<double>(std::get<int64_t>(v));
    case format::DataType::kDouble:
      return std::get<double>(v);
    case format::DataType::kBool:
      return std::get<bool>(v) ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

}  // namespace

AggregateSpec AggregateSpec::CountStar(std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kCount;
  spec.alias = std::move(alias);
  return spec;
}

AggregateSpec AggregateSpec::Sum(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kSum;
  spec.alias = alias.empty() ? "sum(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

AggregateSpec AggregateSpec::Min(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kMin;
  spec.alias = alias.empty() ? "min(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

AggregateSpec AggregateSpec::Max(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kMax;
  spec.alias = alias.empty() ? "max(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

AggregateSpec AggregateSpec::Avg(std::string column, std::string alias) {
  AggregateSpec spec;
  spec.func = Func::kAvg;
  spec.alias = alias.empty() ? "avg(" + column + ")" : std::move(alias);
  spec.column = std::move(column);
  return spec;
}

Executor::Executor(const format::Schema& schema, const QuerySpec& spec)
    : schema_(schema), spec_(spec), groups_(&ValueVectorLess) {
  init_status_ = Status::OK();
  for (const std::string& column : spec_.group_by) {
    int idx = schema_.FieldIndex(column);
    if (idx < 0) {
      init_status_ = Status::InvalidArgument("unknown group column " + column);
      return;
    }
    group_cols_.push_back(idx);
  }
  for (const AggregateSpec& agg : spec_.aggregates) {
    if (agg.column.empty()) {
      agg_cols_.push_back(-1);
    } else {
      int idx = schema_.FieldIndex(agg.column);
      if (idx < 0) {
        init_status_ =
            Status::InvalidArgument("unknown aggregate column " + agg.column);
        return;
      }
      agg_cols_.push_back(idx);
    }
  }
  for (const std::string& column : spec_.projection) {
    int idx = schema_.FieldIndex(column);
    if (idx < 0) {
      init_status_ =
          Status::InvalidArgument("unknown projection column " + column);
      return;
    }
    projection_cols_.push_back(idx);
  }
}

Status Executor::Consume(const std::vector<format::Row>& rows) {
  SL_RETURN_NOT_OK(init_status_);
  for (const format::Row& row : rows) {
    ++rows_scanned_;
    if (!spec_.where.Matches(schema_, row)) continue;
    ++rows_matched_;

    if (spec_.aggregates.empty()) {
      if (projection_cols_.empty()) {
        plain_rows_.push_back(row);
      } else {
        format::Row projected;
        projected.fields.reserve(projection_cols_.size());
        for (int col : projection_cols_) {
          projected.fields.push_back(row.fields[col]);
        }
        plain_rows_.push_back(std::move(projected));
      }
      continue;
    }

    std::vector<format::Value> key;
    key.reserve(group_cols_.size());
    for (int col : group_cols_) key.push_back(row.fields[col]);
    GroupState& state = groups_[key];
    if (state.counts.empty()) {
      state.counts.assign(spec_.aggregates.size(), 0);
      state.sums.assign(spec_.aggregates.size(), 0.0);
      state.mins.assign(spec_.aggregates.size(), std::nullopt);
      state.maxs.assign(spec_.aggregates.size(), std::nullopt);
    }
    for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
      const AggregateSpec& agg = spec_.aggregates[a];
      state.counts[a] += 1;
      if (agg_cols_[a] < 0) continue;
      const format::Value& v = row.fields[agg_cols_[a]];
      switch (agg.func) {
        case AggregateSpec::Func::kSum:
        case AggregateSpec::Func::kAvg:
          state.sums[a] += ToDouble(v);
          break;
        case AggregateSpec::Func::kMin:
          if (!state.mins[a] || format::CompareValues(v, *state.mins[a]) < 0) {
            state.mins[a] = v;
          }
          break;
        case AggregateSpec::Func::kMax:
          if (!state.maxs[a] || format::CompareValues(v, *state.maxs[a]) > 0) {
            state.maxs[a] = v;
          }
          break;
        case AggregateSpec::Func::kCount:
          break;
      }
    }
  }
  return Status::OK();
}

Status Executor::MergeFrom(Executor&& other) {
  SL_RETURN_NOT_OK(init_status_);
  SL_RETURN_NOT_OK(other.init_status_);
  rows_scanned_ += other.rows_scanned_;
  rows_matched_ += other.rows_matched_;
  plain_rows_.insert(plain_rows_.end(),
                     std::make_move_iterator(other.plain_rows_.begin()),
                     std::make_move_iterator(other.plain_rows_.end()));
  for (auto& [key, theirs] : other.groups_) {
    auto [it, inserted] = groups_.try_emplace(key, std::move(theirs));
    if (inserted) continue;
    GroupState& mine = it->second;
    for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
      mine.counts[a] += theirs.counts[a];
      mine.sums[a] += theirs.sums[a];
      if (theirs.mins[a] &&
          (!mine.mins[a] ||
           format::CompareValues(*theirs.mins[a], *mine.mins[a]) < 0)) {
        mine.mins[a] = std::move(theirs.mins[a]);
      }
      if (theirs.maxs[a] &&
          (!mine.maxs[a] ||
           format::CompareValues(*theirs.maxs[a], *mine.maxs[a]) > 0)) {
        mine.maxs[a] = std::move(theirs.maxs[a]);
      }
    }
  }
  return Status::OK();
}

namespace {

/// ORDER BY `column` (by result-column name) and LIMIT, applied to the
/// final rows.
Status ApplyOrderAndLimit(const QuerySpec& spec, QueryResult* result) {
  if (!spec.order_by.empty()) {
    int column = -1;
    for (size_t c = 0; c < result->column_names.size(); ++c) {
      if (result->column_names[c] == spec.order_by) {
        column = static_cast<int>(c);
      }
    }
    if (column < 0) {
      return Status::InvalidArgument("unknown ORDER BY column " +
                                     spec.order_by);
    }
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const format::Row& a, const format::Row& b) {
                       int cmp = format::CompareValues(a.fields[column],
                                                       b.fields[column]);
                       return spec.order_descending ? cmp > 0 : cmp < 0;
                     });
  }
  if (spec.limit > 0 && result->rows.size() > spec.limit) {
    result->rows.resize(spec.limit);
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> Executor::Finalize() {
  SL_RETURN_NOT_OK(init_status_);
  QueryResult result;
  result.rows_scanned = rows_scanned_;
  result.rows_matched = rows_matched_;
  static Counter* rows_scanned =
      MetricsRegistry::Global().GetCounter("query.rows_scanned");
  static Counter* rows_matched =
      MetricsRegistry::Global().GetCounter("query.rows_matched");
  rows_scanned->Increment(rows_scanned_);
  rows_matched->Increment(rows_matched_);

  if (spec_.aggregates.empty()) {
    if (projection_cols_.empty()) {
      for (const format::Field& f : schema_.fields()) {
        result.column_names.push_back(f.name);
      }
    } else {
      for (int col : projection_cols_) {
        result.column_names.push_back(schema_.field(col).name);
      }
    }
    result.rows = std::move(plain_rows_);
    SL_RETURN_NOT_OK(ApplyOrderAndLimit(spec_, &result));
    return result;
  }

  for (const std::string& g : spec_.group_by) result.column_names.push_back(g);
  for (const AggregateSpec& agg : spec_.aggregates) {
    result.column_names.push_back(agg.alias);
  }
  // SQL semantics: global aggregation over an empty input yields one row.
  if (groups_.empty() && spec_.group_by.empty()) {
    groups_[{}] = GroupState{
        std::vector<int64_t>(spec_.aggregates.size(), 0),
        std::vector<double>(spec_.aggregates.size(), 0.0),
        std::vector<std::optional<format::Value>>(spec_.aggregates.size()),
        std::vector<std::optional<format::Value>>(spec_.aggregates.size())};
  }
  for (const auto& [key, state] : groups_) {
    format::Row row;
    row.fields = key;
    for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
      switch (spec_.aggregates[a].func) {
        case AggregateSpec::Func::kCount:
          row.fields.emplace_back(state.counts[a]);
          break;
        case AggregateSpec::Func::kSum:
          row.fields.emplace_back(state.sums[a]);
          break;
        case AggregateSpec::Func::kAvg:
          row.fields.emplace_back(
              state.counts[a] == 0 ? 0.0 : state.sums[a] / state.counts[a]);
          break;
        case AggregateSpec::Func::kMin:
          row.fields.push_back(state.mins[a].value_or(format::Value(int64_t{0})));
          break;
        case AggregateSpec::Func::kMax:
          row.fields.push_back(state.maxs[a].value_or(format::Value(int64_t{0})));
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  SL_RETURN_NOT_OK(ApplyOrderAndLimit(spec_, &result));
  return result;
}

Result<QueryResult> Execute(const format::Schema& schema,
                            const std::vector<format::Row>& rows,
                            const QuerySpec& spec) {
  Executor executor(schema, spec);
  SL_RETURN_NOT_OK(executor.Consume(rows));
  return executor.Finalize();
}

}  // namespace streamlake::query
