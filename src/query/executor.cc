#include "query/executor.h"

#include "common/metrics.h"

namespace streamlake::query {

Executor::Executor(const format::Schema& schema, const QuerySpec& spec)
    : schema_(schema), spec_(spec) {
  init_status_ = aggregate_.Init(schema_, spec_.group_by, spec_.aggregates);
  if (!init_status_.ok()) return;
  init_status_ = project_.Init(schema_, spec_.projection);
}

Status Executor::Consume(const std::vector<format::Row>& rows) {
  SL_RETURN_NOT_OK(init_status_);
  for (const format::Row& row : rows) {
    ++rows_scanned_;
    if (!spec_.where.Matches(schema_, row)) continue;
    ++rows_matched_;

    if (spec_.aggregates.empty()) {
      if (!project_.active()) {
        plain_rows_.push_back(row);
      } else {
        plain_rows_.push_back(project_.Apply(row));
      }
      continue;
    }

    aggregate_.Consume(row);
  }
  return Status::OK();
}

Status Executor::ConsumeFiltered(std::vector<format::Row> rows,
                                 uint64_t scanned) {
  SL_RETURN_NOT_OK(init_status_);
  rows_scanned_ += scanned;
  rows_matched_ += rows.size();
  for (format::Row& row : rows) {
    if (spec_.aggregates.empty()) {
      if (!project_.active()) {
        plain_rows_.push_back(std::move(row));
      } else {
        plain_rows_.push_back(project_.Apply(row));
      }
      continue;
    }
    aggregate_.Consume(row);
  }
  return Status::OK();
}

Status Executor::MergeFrom(Executor&& other) {
  SL_RETURN_NOT_OK(init_status_);
  SL_RETURN_NOT_OK(other.init_status_);
  rows_scanned_ += other.rows_scanned_;
  rows_matched_ += other.rows_matched_;
  plain_rows_.insert(plain_rows_.end(),
                     std::make_move_iterator(other.plain_rows_.begin()),
                     std::make_move_iterator(other.plain_rows_.end()));
  aggregate_.Merge(std::move(other.aggregate_));
  return Status::OK();
}

Result<QueryResult> Executor::Finalize() {
  SL_RETURN_NOT_OK(init_status_);
  QueryResult result;
  result.rows_scanned = rows_scanned_;
  result.rows_matched = rows_matched_;
  static Counter* rows_scanned =
      MetricsRegistry::Global().GetCounter("query.rows_scanned");
  static Counter* rows_matched =
      MetricsRegistry::Global().GetCounter("query.rows_matched");
  rows_scanned->Increment(rows_scanned_);
  rows_matched->Increment(rows_matched_);

  if (spec_.aggregates.empty()) {
    if (!project_.active()) {
      for (const format::Field& f : schema_.fields()) {
        result.column_names.push_back(f.name);
      }
    } else {
      static Counter* project_rows =
          MetricsRegistry::Global().GetCounter("query.op.project.rows");
      project_rows->Increment(plain_rows_.size());
      for (int col : project_.columns()) {
        result.column_names.push_back(schema_.field(col).name);
      }
    }
    result.rows = std::move(plain_rows_);
    if (!spec_.order_by.empty()) {
      static Counter* sort_rows =
          MetricsRegistry::Global().GetCounter("query.op.sort.rows");
      sort_rows->Increment(result.rows.size());
    }
    SL_RETURN_NOT_OK(ApplySortLimit(spec_.order_by, spec_.order_descending,
                                    spec_.limit, &result));
    return result;
  }

  static Counter* aggregate_rows =
      MetricsRegistry::Global().GetCounter("query.op.aggregate.rows");
  aggregate_rows->Increment(aggregate_.rows_consumed());
  aggregate_.Finalize(&result);
  if (!spec_.order_by.empty()) {
    static Counter* sort_rows =
        MetricsRegistry::Global().GetCounter("query.op.sort.rows");
    sort_rows->Increment(result.rows.size());
  }
  SL_RETURN_NOT_OK(ApplySortLimit(spec_.order_by, spec_.order_descending,
                                  spec_.limit, &result));
  return result;
}

Result<QueryResult> Execute(const format::Schema& schema,
                            const std::vector<format::Row>& rows,
                            const QuerySpec& spec) {
  Executor executor(schema, spec);
  SL_RETURN_NOT_OK(executor.Consume(rows));
  return executor.Finalize();
}

}  // namespace streamlake::query
