#ifndef STREAMLAKE_QUERY_OPERATORS_H_
#define STREAMLAKE_QUERY_OPERATORS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "format/schema.h"
#include "query/row_less.h"
#include "query/spec.h"

namespace streamlake::query {

/// \brief Projection operator: resolves the requested columns against a
/// schema once, then maps rows. An empty column list is the identity
/// projection (all columns pass through).
class ProjectOperator {
 public:
  Status Init(const format::Schema& schema,
              const std::vector<std::string>& columns);

  bool active() const { return !columns_.empty(); }
  const std::vector<int>& columns() const { return columns_; }

  format::Row Apply(const format::Row& row) const;

 private:
  std::vector<int> columns_;
};

/// \brief Grouped-aggregation operator: accumulates per-group running
/// state (COUNT/SUM/MIN/MAX/AVG) and merges partial states produced by
/// parallel scan fragments. Merging is order-insensitive except for
/// floating-point SUM/AVG rounding, which is why the parallel Select path
/// merges fragments in deterministic file order.
class AggregateOperator {
 public:
  Status Init(const format::Schema& schema,
              const std::vector<std::string>& group_by,
              const std::vector<AggregateSpec>& aggregates);

  /// Accumulate one (already filtered) row.
  void Consume(const format::Row& row);

  /// Fold another operator's partial state into this one. Both must have
  /// been Init-ed from the same schema and specs; `other` is consumed.
  void Merge(AggregateOperator&& other);

  /// Emit the aggregate output: column names (group columns then aggregate
  /// aliases) and one row per group. SQL semantics: global aggregation
  /// over an empty input yields exactly one row.
  void Finalize(QueryResult* result);

  /// Rows consumed so far (feeds the per-operator row counters).
  uint64_t rows_consumed() const { return rows_consumed_; }

 private:
  struct GroupState {
    std::vector<int64_t> counts;
    std::vector<double> sums;
    std::vector<std::optional<format::Value>> mins;
    std::vector<std::optional<format::Value>> maxs;
  };

  std::vector<std::string> group_by_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<int> group_cols_;
  std::vector<int> agg_cols_;
  std::map<std::vector<format::Value>, GroupState, RowLess> groups_;
  uint64_t rows_consumed_ = 0;
};

/// \brief Sort/limit operator: ORDER BY one output column (matched by
/// result column name, so it applies to aggregate aliases too) followed by
/// LIMIT. Applied once, after all fragments merged.
Status ApplySortLimit(const std::string& order_by, bool descending,
                      uint64_t limit, QueryResult* result);

}  // namespace streamlake::query

#endif  // STREAMLAKE_QUERY_OPERATORS_H_
