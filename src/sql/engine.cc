#include "sql/engine.h"

namespace streamlake::sql {

namespace {

query::QueryResult AffectedRows(uint64_t count) {
  query::QueryResult result;
  result.column_names = {"affected"};
  format::Row row;
  row.fields = {format::Value(static_cast<int64_t>(count))};
  result.rows.push_back(std::move(row));
  return result;
}

}  // namespace

Result<query::QueryResult> Engine::Execute(const std::string& statement,
                                           table::SelectMetrics* metrics) {
  SL_ASSIGN_OR_RETURN(query::SqlStatement parsed, query::ParseSql(statement));
  if (parsed.kind == query::SqlStatement::Kind::kSelect) {
    // SELECT goes through the lakehouse entry point, which plans the
    // statement (including joins) and pins every table's snapshot up
    // front. Single-table statements collapse back into Table::Select.
    return lakehouse_->Query(parsed, select_options_, metrics);
  }
  SL_ASSIGN_OR_RETURN(table::Table * table,
                      lakehouse_->GetTable(parsed.table));
  switch (parsed.kind) {
    case query::SqlStatement::Kind::kSelect:
      break;  // handled above; falls through to the unknown-kind error
    case query::SqlStatement::Kind::kInsert: {
      SL_ASSIGN_OR_RETURN(table::TableInfo info, table->Info());
      std::vector<format::Row> rows;
      rows.reserve(parsed.insert_rows.size());
      for (auto& values : parsed.insert_rows) {
        format::Row row;
        row.fields = std::move(values);
        // SQL integer literals may target double columns; coerce.
        for (size_t c = 0; c < row.fields.size() &&
                           c < info.schema.num_fields(); ++c) {
          if (info.schema.field(c).type == format::DataType::kDouble &&
              format::TypeOf(row.fields[c]) == format::DataType::kInt64) {
            row.fields[c] = format::Value(
                static_cast<double>(std::get<int64_t>(row.fields[c])));
          }
        }
        rows.push_back(std::move(row));
      }
      SL_RETURN_NOT_OK(table->Insert(rows));
      return AffectedRows(rows.size());
    }
    case query::SqlStatement::Kind::kDelete: {
      SL_ASSIGN_OR_RETURN(uint64_t deleted, table->Delete(parsed.where));
      return AffectedRows(deleted);
    }
    case query::SqlStatement::Kind::kUpdate: {
      SL_ASSIGN_OR_RETURN(uint64_t updated,
                          table->Update(parsed.where, parsed.set_column,
                                        parsed.set_value));
      return AffectedRows(updated);
    }
  }
  return Status::InvalidArgument("unknown statement kind");
}

}  // namespace streamlake::sql
