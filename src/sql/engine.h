#ifndef STREAMLAKE_SQL_ENGINE_H_
#define STREAMLAKE_SQL_ENGINE_H_

#include <string>

#include "query/sql_parser.h"
#include "table/lakehouse.h"

namespace streamlake::sql {

/// \brief Executes SQL statements against the lakehouse — the surface the
/// compute engines of Fig. 12 use (the paper runs Spark SQL; Fig. 13 is
/// the DAU query this engine runs natively, with pushdown).
class Engine {
 public:
  explicit Engine(table::LakehouseService* lakehouse,
                  table::SelectOptions default_select_options = {})
      : lakehouse_(lakehouse),
        select_options_(default_select_options) {}

  /// Parse and run one statement. SELECT returns its result set;
  /// INSERT/DELETE/UPDATE return one row with the affected-row count
  /// (column "affected").
  Result<query::QueryResult> Execute(const std::string& statement,
                                     table::SelectMetrics* metrics = nullptr);

 private:
  table::LakehouseService* lakehouse_;
  table::SelectOptions select_options_;
};

}  // namespace streamlake::sql

#endif  // STREAMLAKE_SQL_ENGINE_H_
