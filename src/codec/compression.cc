#include "codec/compression.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace streamlake::codec {

namespace {

// LZ77 with greedy hash-table matching. Token stream:
//   [literal_len varint][literals][match_len varint][match_dist varint]
// repeated; match_len == 0 terminates a token pair (trailing literals only).
// Minimum profitable match is 4 bytes; window is 64 KiB.
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kWindow = 1 << 16;
constexpr size_t kHashBits = 15;

inline uint32_t HashFour(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

Bytes LzCompress(ByteView input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const uint8_t* base = input.data();
  const size_t n = input.size();
  std::vector<int64_t> head(1 << kHashBits, -1);

  size_t pos = 0;
  size_t literal_start = 0;
  while (pos + kMinMatch <= n) {
    uint32_t h = HashFour(base + pos);
    int64_t candidate = head[h];
    head[h] = static_cast<int64_t>(pos);

    size_t match_len = 0;
    if (candidate >= 0 && pos - static_cast<size_t>(candidate) <= kWindow) {
      const uint8_t* a = base + candidate;
      const uint8_t* b = base + pos;
      size_t limit = std::min(n - pos, kMaxMatch);
      while (match_len < limit && a[match_len] == b[match_len]) ++match_len;
    }

    if (match_len >= kMinMatch) {
      // Emit pending literals, then the match.
      PutVarint64(&out, pos - literal_start);
      out.insert(out.end(), base + literal_start, base + pos);
      PutVarint64(&out, match_len);
      PutVarint64(&out, pos - static_cast<size_t>(candidate));
      // Index a few positions inside the match so later data can refer to it.
      size_t end = pos + match_len;
      for (size_t i = pos + 1; i + kMinMatch <= end && i < pos + 8; ++i) {
        head[HashFour(base + i)] = static_cast<int64_t>(i);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Trailing literals with a zero-length match terminator.
  PutVarint64(&out, n - literal_start);
  out.insert(out.end(), base + literal_start, base + n);
  PutVarint64(&out, 0);
  return out;
}

Result<Bytes> LzDecompress(ByteView input, size_t uncompressed_size) {
  Bytes out;
  out.reserve(uncompressed_size);
  const uint8_t* p = input.data();
  const uint8_t* limit = p + input.size();
  while (true) {
    uint64_t literal_len;
    if (!GetVarint64(&p, limit, &literal_len)) {
      return Status::Corruption("lz: truncated literal length");
    }
    if (static_cast<uint64_t>(limit - p) < literal_len) {
      return Status::Corruption("lz: truncated literals");
    }
    out.insert(out.end(), p, p + literal_len);
    p += literal_len;

    uint64_t match_len;
    if (!GetVarint64(&p, limit, &match_len)) {
      return Status::Corruption("lz: truncated match length");
    }
    if (match_len == 0) break;
    uint64_t dist;
    if (!GetVarint64(&p, limit, &dist)) {
      return Status::Corruption("lz: truncated match distance");
    }
    if (dist == 0 || dist > out.size()) {
      return Status::Corruption("lz: bad match distance");
    }
    // Byte-by-byte copy: overlapping matches (dist < len) are legal and
    // implement run-length behaviour.
    size_t src = out.size() - static_cast<size_t>(dist);
    for (uint64_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != uncompressed_size) {
    return Status::Corruption("lz: size mismatch after decompression");
  }
  return out;
}

}  // namespace

Bytes Compress(Compression codec, ByteView input) {
  switch (codec) {
    case Compression::kNone:
      return input.ToBytes();
    case Compression::kLz:
      return LzCompress(input);
  }
  return input.ToBytes();
}

Result<Bytes> Decompress(Compression codec, ByteView input,
                         size_t uncompressed_size) {
  switch (codec) {
    case Compression::kNone:
      if (input.size() != uncompressed_size) {
        return Status::Corruption("none: size mismatch");
      }
      return input.ToBytes();
    case Compression::kLz:
      return LzDecompress(input, uncompressed_size);
  }
  return Status::NotSupported("unknown compression codec");
}

}  // namespace streamlake::codec
