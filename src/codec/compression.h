#ifndef STREAMLAKE_CODEC_COMPRESSION_H_
#define STREAMLAKE_CODEC_COMPRESSION_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace streamlake::codec {

/// Block compression codecs available to PLogs, LakeFile column chunks, and
/// the archive service. kLz is a from-scratch LZ77 variant (byte-oriented,
/// 64 KiB window) — the "compression techniques" lever of the TCO story.
enum class Compression : uint8_t {
  kNone = 0,
  kLz = 1,
};

/// Compress `input` with `codec`. The output is self-describing enough to
/// decompress given the codec and the original size.
Bytes Compress(Compression codec, ByteView input);

/// Decompress a block produced by Compress(). `uncompressed_size` must be
/// the original input size (stored by every on-disk block header).
Result<Bytes> Decompress(Compression codec, ByteView input,
                         size_t uncompressed_size);

}  // namespace streamlake::codec

#endif  // STREAMLAKE_CODEC_COMPRESSION_H_
