#ifndef STREAMLAKE_CODEC_ENCODING_H_
#define STREAMLAKE_CODEC_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace streamlake::codec {

/// Light-weight column encodings applied inside LakeFile column chunks
/// before block compression. Chosen adaptively per chunk.
enum class Encoding : uint8_t {
  kPlain = 0,    // zigzag varints / fixed64 / length-prefixed strings
  kRle = 1,      // (value, run_length) pairs
  kDelta = 2,    // zigzag varint deltas; wins on sorted/monotonic ints
  kDict = 3,     // dictionary + varint codes; wins on low cardinality
  kBitPack = 4,  // 1 bit per bool
};

/// Dictionary chunks split into their compressed parts: the distinct values
/// in first-appearance order plus one code per row. Scans evaluate equality
/// predicates on the codes without ever materializing row values.
struct Int64DictParts {
  std::vector<int64_t> dict;
  std::vector<uint32_t> codes;
};
struct StringDictParts {
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
};

// ---- int64 columns ----
void EncodeInt64s(const std::vector<int64_t>& values, Encoding encoding,
                  Bytes* dst);
Result<std::vector<int64_t>> DecodeInt64s(ByteView data, Encoding encoding,
                                          size_t count);
/// Decodes a kDict chunk without materializing per-row values.
Result<Int64DictParts> DecodeInt64DictParts(ByteView data, size_t count);
/// Picks RLE for runs, DICT for low cardinality (when the caller knows the
/// distinct count), DELTA for near-sorted data, PLAIN otherwise. `ndv == 0`
/// means "unknown" and disables the dictionary choice.
Encoding ChooseInt64Encoding(const std::vector<int64_t>& values,
                             uint64_t ndv = 0);

// ---- double columns ----
void EncodeDoubles(const std::vector<double>& values, Bytes* dst);
Result<std::vector<double>> DecodeDoubles(ByteView data, size_t count);

// ---- string columns ----
void EncodeStrings(const std::vector<std::string>& values, Encoding encoding,
                   Bytes* dst);
Result<std::vector<std::string>> DecodeStrings(ByteView data,
                                               Encoding encoding,
                                               size_t count);
/// Decodes a kDict chunk without materializing per-row values.
Result<StringDictParts> DecodeStringDictParts(ByteView data, size_t count);
/// Picks DICT when distinct values are few (provinces, urls), else PLAIN.
/// `ndv != 0` (a precomputed distinct count) skips the sampling pass.
Encoding ChooseStringEncoding(const std::vector<std::string>& values,
                              uint64_t ndv = 0);

// ---- bool columns ----
void EncodeBools(const std::vector<uint8_t>& values, Bytes* dst);
Result<std::vector<uint8_t>> DecodeBools(ByteView data, size_t count);

}  // namespace streamlake::codec

#endif  // STREAMLAKE_CODEC_ENCODING_H_
