#ifndef STREAMLAKE_CODEC_ENCODING_H_
#define STREAMLAKE_CODEC_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace streamlake::codec {

/// Light-weight column encodings applied inside LakeFile column chunks
/// before block compression. Chosen adaptively per chunk.
enum class Encoding : uint8_t {
  kPlain = 0,    // zigzag varints / fixed64 / length-prefixed strings
  kRle = 1,      // (value, run_length) pairs
  kDelta = 2,    // zigzag varint deltas; wins on sorted/monotonic ints
  kDict = 3,     // dictionary + varint codes; wins on low cardinality
  kBitPack = 4,  // 1 bit per bool
};

// ---- int64 columns ----
void EncodeInt64s(const std::vector<int64_t>& values, Encoding encoding,
                  Bytes* dst);
Result<std::vector<int64_t>> DecodeInt64s(ByteView data, Encoding encoding,
                                          size_t count);
/// Picks RLE for runs, DELTA for near-sorted data, PLAIN otherwise.
Encoding ChooseInt64Encoding(const std::vector<int64_t>& values);

// ---- double columns ----
void EncodeDoubles(const std::vector<double>& values, Bytes* dst);
Result<std::vector<double>> DecodeDoubles(ByteView data, size_t count);

// ---- string columns ----
void EncodeStrings(const std::vector<std::string>& values, Encoding encoding,
                   Bytes* dst);
Result<std::vector<std::string>> DecodeStrings(ByteView data,
                                               Encoding encoding,
                                               size_t count);
/// Picks DICT when distinct values are few (provinces, urls), else PLAIN.
Encoding ChooseStringEncoding(const std::vector<std::string>& values);

// ---- bool columns ----
void EncodeBools(const std::vector<uint8_t>& values, Bytes* dst);
Result<std::vector<uint8_t>> DecodeBools(ByteView data, size_t count);

}  // namespace streamlake::codec

#endif  // STREAMLAKE_CODEC_ENCODING_H_
