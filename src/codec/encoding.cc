#include "codec/encoding.h"

#include <map>

#include "common/coding.h"

namespace streamlake::codec {

namespace {

void EncodeInt64Plain(const std::vector<int64_t>& values, Bytes* dst) {
  for (int64_t v : values) PutVarint64Signed(dst, v);
}

void EncodeInt64Delta(const std::vector<int64_t>& values, Bytes* dst) {
  int64_t prev = 0;
  for (int64_t v : values) {
    PutVarint64Signed(dst, v - prev);
    prev = v;
  }
}

void EncodeInt64Rle(const std::vector<int64_t>& values, Bytes* dst) {
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    PutVarint64Signed(dst, values[i]);
    PutVarint64(dst, j - i);
    i = j;
  }
}

void EncodeStringsPlain(const std::vector<std::string>& values, Bytes* dst) {
  for (const std::string& s : values) {
    PutLengthPrefixed(dst, std::string_view(s));
  }
}

void EncodeStringsDict(const std::vector<std::string>& values, Bytes* dst) {
  std::map<std::string, uint64_t> dict;
  std::vector<const std::string*> ordered;
  for (const std::string& s : values) {
    if (dict.emplace(s, dict.size()).second) ordered.push_back(&s);
  }
  // Re-number dictionary entries in first-appearance order for determinism.
  // (map iteration is sorted; we stored first-appearance ids at insert time.)
  PutVarint64(dst, ordered.size());
  for (const std::string* s : ordered) {
    PutLengthPrefixed(dst, std::string_view(*s));
  }
  for (const std::string& s : values) {
    PutVarint64(dst, dict[s]);
  }
}

void EncodeInt64Dict(const std::vector<int64_t>& values, Bytes* dst) {
  std::map<int64_t, uint64_t> dict;
  std::vector<int64_t> ordered;
  for (int64_t v : values) {
    if (dict.emplace(v, dict.size()).second) ordered.push_back(v);
  }
  PutVarint64(dst, ordered.size());
  for (int64_t v : ordered) PutVarint64Signed(dst, v);
  for (int64_t v : values) PutVarint64(dst, dict[v]);
}

/// Shared header parse for both dict decode paths: reads the code stream into
/// `codes` after `read_entry` has consumed each dictionary entry.
template <typename ReadEntry>
Status DecodeDictCodes(Decoder* dec, size_t count, const ReadEntry& read_entry,
                       uint64_t* dict_size_out, std::vector<uint32_t>* codes) {
  uint64_t dict_size;
  if (!dec->GetVarint(&dict_size)) return Status::Corruption("dict size");
  if (dict_size > dec->Remaining()) {
    return Status::Corruption("dict size bogus");
  }
  for (uint64_t i = 0; i < dict_size; ++i) {
    if (!read_entry()) return Status::Corruption("dict entry");
  }
  codes->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t code;
    if (!dec->GetVarint(&code) || code >= dict_size) {
      return Status::Corruption("dict code");
    }
    codes->push_back(static_cast<uint32_t>(code));
  }
  *dict_size_out = dict_size;
  return Status::OK();
}

}  // namespace

void EncodeInt64s(const std::vector<int64_t>& values, Encoding encoding,
                  Bytes* dst) {
  switch (encoding) {
    case Encoding::kPlain:
      EncodeInt64Plain(values, dst);
      return;
    case Encoding::kDelta:
      EncodeInt64Delta(values, dst);
      return;
    case Encoding::kRle:
      EncodeInt64Rle(values, dst);
      return;
    case Encoding::kDict:
      EncodeInt64Dict(values, dst);
      return;
    default:
      EncodeInt64Plain(values, dst);
      return;
  }
}

Result<std::vector<int64_t>> DecodeInt64s(ByteView data, Encoding encoding,
                                          size_t count) {
  // RLE aside, each value costs >= 1 byte; cap the allocation against
  // corrupt counts. (RLE validates run lengths against `count` itself.)
  if (encoding != Encoding::kRle && count > data.size()) {
    return Status::Corruption("int64 count exceeds payload");
  }
  std::vector<int64_t> out;
  out.reserve(std::min<size_t>(count, data.size() + 1));
  Decoder dec(data);
  switch (encoding) {
    case Encoding::kPlain: {
      for (size_t i = 0; i < count; ++i) {
        int64_t v;
        if (!dec.GetVarintSigned(&v)) return Status::Corruption("int64 plain");
        out.push_back(v);
      }
      return out;
    }
    case Encoding::kDelta: {
      int64_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        int64_t d;
        if (!dec.GetVarintSigned(&d)) return Status::Corruption("int64 delta");
        prev += d;
        out.push_back(prev);
      }
      return out;
    }
    case Encoding::kRle: {
      // RLE legitimately expands, but a corrupt count must not drive an
      // unbounded allocation: cap the accepted expansion factor.
      if (count / 65536 > data.size()) {
        return Status::Corruption("int64 rle: implausible count");
      }
      while (out.size() < count) {
        int64_t v;
        uint64_t run;
        if (!dec.GetVarintSigned(&v) || !dec.GetVarint(&run)) {
          return Status::Corruption("int64 rle");
        }
        if (run == 0 || out.size() + run > count) {
          return Status::Corruption("int64 rle: bad run length");
        }
        out.insert(out.end(), run, v);
      }
      return out;
    }
    case Encoding::kDict: {
      auto parts = DecodeInt64DictParts(data, count);
      if (!parts.ok()) return parts.status();
      for (uint32_t code : parts->codes) out.push_back(parts->dict[code]);
      return out;
    }
    default:
      return Status::NotSupported("int64 encoding");
  }
}

Result<Int64DictParts> DecodeInt64DictParts(ByteView data, size_t count) {
  if (count > data.size()) {
    return Status::Corruption("int64 dict count exceeds payload");
  }
  Int64DictParts parts;
  Decoder dec(data);
  uint64_t dict_size = 0;
  Status s = DecodeDictCodes(
      &dec, count,
      [&] {
        int64_t v;
        if (!dec.GetVarintSigned(&v)) return false;
        parts.dict.push_back(v);
        return true;
      },
      &dict_size, &parts.codes);
  if (!s.ok()) return Status::Corruption("int64 " + s.message());
  return parts;
}

Encoding ChooseInt64Encoding(const std::vector<int64_t>& values, uint64_t ndv) {
  if (values.size() < 8) return Encoding::kPlain;
  size_t runs = 1;
  size_t sorted_pairs = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] != values[i - 1]) ++runs;
    if (values[i] >= values[i - 1]) ++sorted_pairs;
  }
  if (runs * 4 <= values.size()) return Encoding::kRle;
  if (ndv != 0 && values.size() >= 16 && ndv * 4 <= values.size()) {
    return Encoding::kDict;
  }
  if (sorted_pairs * 10 >= (values.size() - 1) * 9) return Encoding::kDelta;
  return Encoding::kPlain;
}

void EncodeDoubles(const std::vector<double>& values, Bytes* dst) {
  for (double d : values) {
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    PutFixed64(dst, bits);
  }
}

Result<std::vector<double>> DecodeDoubles(ByteView data, size_t count) {
  if (count > data.size() / 8) return Status::Corruption("double plain");
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t bits = DecodeFixed64(data.data() + i * 8);
    double d;
    std::memcpy(&d, &bits, 8);
    out.push_back(d);
  }
  return out;
}

void EncodeStrings(const std::vector<std::string>& values, Encoding encoding,
                   Bytes* dst) {
  switch (encoding) {
    case Encoding::kDict:
      EncodeStringsDict(values, dst);
      return;
    default:
      EncodeStringsPlain(values, dst);
      return;
  }
}

Result<std::vector<std::string>> DecodeStrings(ByteView data,
                                               Encoding encoding,
                                               size_t count) {
  if (count > data.size()) {
    return Status::Corruption("string count exceeds payload");
  }
  std::vector<std::string> out;
  out.reserve(count);
  Decoder dec(data);
  switch (encoding) {
    case Encoding::kPlain: {
      for (size_t i = 0; i < count; ++i) {
        std::string s;
        if (!dec.GetString(&s)) return Status::Corruption("string plain");
        out.push_back(std::move(s));
      }
      return out;
    }
    case Encoding::kDict: {
      auto parts = DecodeStringDictParts(data, count);
      if (!parts.ok()) return parts.status();
      for (uint32_t code : parts->codes) out.push_back(parts->dict[code]);
      return out;
    }
    default:
      return Status::NotSupported("string encoding");
  }
}

Result<StringDictParts> DecodeStringDictParts(ByteView data, size_t count) {
  if (count > data.size()) {
    return Status::Corruption("string dict count exceeds payload");
  }
  StringDictParts parts;
  Decoder dec(data);
  uint64_t dict_size = 0;
  Status s = DecodeDictCodes(
      &dec, count,
      [&] {
        std::string v;
        if (!dec.GetString(&v)) return false;
        parts.dict.push_back(std::move(v));
        return true;
      },
      &dict_size, &parts.codes);
  if (!s.ok()) return Status::Corruption("string " + s.message());
  return parts;
}

Encoding ChooseStringEncoding(const std::vector<std::string>& values,
                              uint64_t ndv) {
  if (values.size() < 16) return Encoding::kPlain;
  // Dictionary pays off below ~1/4 distinct ratio. A precomputed distinct
  // count (footer stats) answers that directly; otherwise sample.
  if (ndv != 0) {
    return ndv * 4 <= values.size() ? Encoding::kDict : Encoding::kPlain;
  }
  std::map<std::string_view, int> distinct;
  for (const std::string& s : values) {
    distinct.emplace(s, 1);
    if (distinct.size() * 4 > values.size()) return Encoding::kPlain;
  }
  return Encoding::kDict;
}

void EncodeBools(const std::vector<uint8_t>& values, Bytes* dst) {
  uint8_t acc = 0;
  int bit = 0;
  for (uint8_t v : values) {
    if (v) acc |= static_cast<uint8_t>(1 << bit);
    if (++bit == 8) {
      dst->push_back(acc);
      acc = 0;
      bit = 0;
    }
  }
  if (bit > 0) dst->push_back(acc);
}

Result<std::vector<uint8_t>> DecodeBools(ByteView data, size_t count) {
  if (data.size() * 8 < count) return Status::Corruption("bool bitpack");
  std::vector<uint8_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back((data[i / 8] >> (i % 8)) & 1);
  }
  return out;
}

}  // namespace streamlake::codec
