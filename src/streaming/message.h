#ifndef STREAMLAKE_STREAMING_MESSAGE_H_
#define STREAMLAKE_STREAMING_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace streamlake::streaming {

/// A key-value message published to a topic (the producer/consumer API of
/// Fig. 7 is deliberately Kafka-compatible).
struct Message {
  std::string key;
  std::string value;
  int64_t timestamp = 0;  // event time, seconds

  Message() = default;
  explicit Message(std::string v) : value(std::move(v)) {}
  Message(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  Message(std::string k, std::string v, int64_t ts)
      : key(std::move(k)), value(std::move(v)), timestamp(ts) {}

  size_t ByteSize() const { return key.size() + value.size() + 8; }

  bool operator==(const Message& other) const {
    return key == other.key && value == other.value &&
           timestamp == other.timestamp;
  }
};

/// A consumed message plus its provenance (stream + offset), which
/// consumers use for exactly-once offset commits.
struct ConsumedMessage {
  Message message;
  uint32_t stream_index = 0;
  uint64_t offset = 0;
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_MESSAGE_H_
