#include "streaming/archive.h"

#include "format/lakefile.h"
#include "format/row_codec.h"

namespace streamlake::streaming {

namespace {

/// Fixed schema of archived messages (the topic's own table conversion
/// uses convert_2_table instead; the archive preserves raw messages).
format::Schema ArchiveSchema() {
  return format::Schema{{"key", format::DataType::kString},
                        {"value", format::DataType::kString},
                        {"timestamp", format::DataType::kInt64}};
}

}  // namespace

std::string ArchiveService::OffsetKey(const std::string& topic,
                                      uint32_t stream) const {
  return "archive/" + topic + "/" + std::to_string(stream);
}

Result<ArchiveService::RunStats> ArchiveService::Run(const std::string& topic,
                                                     bool force) {
  SL_ASSIGN_OR_RETURN(TopicConfig config, dispatcher_->GetTopicConfig(topic));
  RunStats stats;
  if (!config.archive.enabled && !force) return stats;

  SL_ASSIGN_OR_RETURN(uint32_t streams, dispatcher_->NumStreams(topic));

  // First pass: measure the unarchived volume to evaluate the trigger.
  std::vector<uint64_t> from(streams, 0);
  std::vector<std::vector<stream::StreamRecord>> tails(streams);
  uint64_t unarchived_bytes = 0;
  for (uint32_t s = 0; s < streams; ++s) {
    auto committed = meta_->Get(OffsetKey(topic, s));
    if (committed.ok()) from[s] = std::stoull(*committed);
    SL_ASSIGN_OR_RETURN(auto route, dispatcher_->RouteFetch(topic, s));
    SL_ASSIGN_OR_RETURN(tails[s],
                        route.worker->Fetch(route.stream_object_id, from[s],
                                            SIZE_MAX));
    for (const auto& record : tails[s]) unarchived_bytes += record.ByteSize();
  }
  if (!force && unarchived_bytes < config.archive.archive_size_mb << 20) {
    return stats;  // below the archive_size trigger
  }

  for (uint32_t s = 0; s < streams; ++s) {
    if (tails[s].empty()) continue;
    std::string path = "/archive/" + topic + "/" + std::to_string(s) + "-" +
                       std::to_string(next_file_seq_++);
    Bytes file;
    if (config.archive.row_2_col) {
      // Columnar conversion: dictionary/RLE + compression shrink the
      // archive far below the raw stream bytes.
      format::LakeFileWriter writer(ArchiveSchema());
      for (const auto& record : tails[s]) {
        format::Row row;
        row.fields = {format::Value(record.key),
                      format::Value(BytesToString(record.value)),
                      format::Value(record.timestamp)};
        SL_RETURN_NOT_OK(writer.Append(row));
      }
      SL_ASSIGN_OR_RETURN(file, writer.Finish());
      path += ".lake";
    } else {
      format::Schema schema = ArchiveSchema();
      for (const auto& record : tails[s]) {
        format::Row row;
        row.fields = {format::Value(record.key),
                      format::Value(BytesToString(record.value)),
                      format::Value(record.timestamp)};
        format::EncodeRow(schema, row, &file);
      }
      path += ".rows";
    }
    SL_RETURN_NOT_OK(archive_store_->Write(path, ByteView(file)));
    stats.files_written += 1;
    stats.archived_bytes += file.size();
    stats.archived_records += tails[s].size();
    for (const auto& record : tails[s]) {
      stats.source_bytes += record.ByteSize();
    }
    SL_RETURN_NOT_OK(meta_->Put(OffsetKey(topic, s),
                                std::to_string(from[s] + tails[s].size())));
  }
  return stats;
}

}  // namespace streamlake::streaming
