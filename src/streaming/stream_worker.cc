#include "streaming/stream_worker.h"

namespace streamlake::streaming {

void StreamWorker::AssignStream(uint64_t stream_object_id) {
  MutexLock lock(&mu_);
  streams_.insert(stream_object_id);
}

void StreamWorker::UnassignStream(uint64_t stream_object_id) {
  MutexLock lock(&mu_);
  streams_.erase(stream_object_id);
}

size_t StreamWorker::num_streams() const {
  MutexLock lock(&mu_);
  return streams_.size();
}

bool StreamWorker::HandlesStream(uint64_t stream_object_id) const {
  MutexLock lock(&mu_);
  return streams_.count(stream_object_id) > 0;
}

namespace {

// Wrap client messages in the stream object data format ("redirect them
// to the corresponding stream objects via RDMA"); returns the wire bytes
// charged to the data bus.
uint64_t WrapMessages(const std::vector<Message>& messages,
                      uint64_t producer_id, uint64_t first_seq,
                      std::vector<stream::StreamRecord>* records) {
  records->reserve(messages.size());
  uint64_t bytes = 0;
  for (size_t i = 0; i < messages.size(); ++i) {
    stream::StreamRecord record;
    record.key = messages[i].key;
    record.value = ToBytes(messages[i].value);
    record.timestamp = messages[i].timestamp;
    record.producer_id = producer_id;
    record.producer_seq = first_seq + i;
    bytes += record.ByteSize();
    records->push_back(std::move(record));
  }
  return bytes;
}

}  // namespace

Result<uint64_t> StreamWorker::Produce(uint64_t stream_object_id,
                                       const std::vector<Message>& messages,
                                       uint64_t producer_id,
                                       uint64_t first_seq) {
  if (!HandlesStream(stream_object_id)) {
    return Status::NotFound("worker " + std::to_string(id_) +
                            " does not handle stream " +
                            std::to_string(stream_object_id));
  }
  stream::StreamObject* object = objects_->GetObject(stream_object_id);
  if (object == nullptr) {
    return Status::NotFound("stream object gone");
  }
  std::vector<stream::StreamRecord> records;
  bus_->ChargeTransfer(
      WrapMessages(messages, producer_id, first_seq, &records));
  return object->Append(std::move(records));
}

Result<uint64_t> StreamWorker::ProduceBatch(
    uint64_t stream_object_id, const std::vector<Message>& messages,
    uint64_t producer_id, uint64_t first_seq) {
  if (!HandlesStream(stream_object_id)) {
    return Status::NotFound("worker " + std::to_string(id_) +
                            " does not handle stream " +
                            std::to_string(stream_object_id));
  }
  stream::StreamObject* object = objects_->GetObject(stream_object_id);
  if (object == nullptr) {
    return Status::NotFound("stream object gone");
  }
  std::vector<stream::StreamRecord> records;
  bus_->ChargeTransfer(
      WrapMessages(messages, producer_id, first_seq, &records));
  return object->AppendBatch(std::move(records));
}

Result<uint64_t> StreamWorker::FindOffsetByTimestamp(uint64_t stream_object_id,
                                                     int64_t timestamp) {
  if (!HandlesStream(stream_object_id)) {
    return Status::NotFound("worker does not handle stream " +
                            std::to_string(stream_object_id));
  }
  stream::StreamObject* object = objects_->GetObject(stream_object_id);
  if (object == nullptr) return Status::NotFound("stream object gone");
  return object->FindOffsetByTimestamp(timestamp);
}

Result<std::vector<stream::StreamRecord>> StreamWorker::Fetch(
    uint64_t stream_object_id, uint64_t offset, size_t max_records) {
  if (!HandlesStream(stream_object_id)) {
    return Status::NotFound("worker " + std::to_string(id_) +
                            " does not handle stream " +
                            std::to_string(stream_object_id));
  }
  stream::StreamObject* object = objects_->GetObject(stream_object_id);
  if (object == nullptr) {
    return Status::NotFound("stream object gone");
  }
  SL_ASSIGN_OR_RETURN(auto records, object->Read(offset, max_records));
  uint64_t bytes = 0;
  for (const auto& record : records) bytes += record.ByteSize();
  bus_->ChargeTransfer(bytes);
  return records;
}

}  // namespace streamlake::streaming
