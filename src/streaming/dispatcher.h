#ifndef STREAMLAKE_STREAMING_DISPATCHER_H_
#define STREAMLAKE_STREAMING_DISPATCHER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "kv/kv_store.h"
#include "sim/clock.h"
#include "sim/network_model.h"
#include "streaming/stream_worker.h"
#include "streaming/topic_config.h"

namespace streamlake::streaming {

/// \brief The stream dispatcher (Section V-A): owns the messaging-service
/// metadata and routes producer/consumer requests to stream workers.
///
/// "The relationships among topics, streams, stream workers, and stream
/// objects are stored as key-value pairs in a fault-tolerant key-value
/// store within the stream dispatcher." Worker/stream reassignment touches
/// only this metadata, which is why scaling needs no data migration.
class StreamDispatcher {
 public:
  StreamDispatcher(stream::StreamObjectManager* objects, kv::KvStore* meta,
                   sim::NetworkModel* bus, sim::SimClock* clock,
                   uint32_t initial_workers = 3);

  /// Declare a topic: creates `config.stream_num` streams, one stream
  /// object each, assigned to workers round-robin.
  Status CreateTopic(const std::string& topic, const TopicConfig& config);

  Status DeleteTopic(const std::string& topic);

  bool HasTopic(const std::string& topic) const;
  Result<TopicConfig> GetTopicConfig(const std::string& topic) const;
  Result<uint32_t> NumStreams(const std::string& topic) const;

  /// Stream object id of stream `index` of `topic`.
  Result<uint64_t> StreamObjectId(const std::string& topic,
                                  uint32_t index) const;

  /// Pick the stream for a message key (hash routing; empty keys spread
  /// round-robin) and resolve its worker.
  struct Route {
    uint32_t stream_index = 0;
    uint64_t stream_object_id = 0;
    StreamWorker* worker = nullptr;
  };
  Result<Route> RouteProduce(const std::string& topic, const std::string& key);
  Result<Route> RouteFetch(const std::string& topic, uint32_t stream_index);

  /// Grow/shrink the worker fleet and rebalance stream assignments.
  /// Metadata-only: returns after the KV topology updates.
  Status ResizeWorkers(uint32_t count);

  /// Health tracking: stream object clients "actively monitor the health
  /// of the stream objects ... and regularly exchange critical service
  /// data with the dispatcher" (Section V-A). Workers heartbeat; a sweep
  /// reassigns the streams of workers silent past the timeout.
  void Heartbeat(uint32_t worker_index);
  struct HealthSweepStats {
    uint32_t dead_workers = 0;
    uint32_t streams_reassigned = 0;
  };
  Result<HealthSweepStats> SweepDeadWorkers(uint64_t timeout_ns);

  /// Add streams (partitions) to a topic — the Fig. 14(c) scaling path.
  Status AddStreams(const std::string& topic, uint32_t additional);

  uint32_t num_workers() const;
  StreamWorker* worker(uint32_t index);

  /// Allocate a unique producer id (idempotence tracking).
  uint64_t NextProducerId();

  /// Crash recovery: rebuild every topic and stream assignment from the
  /// fault-tolerant KV store. The stream object manager must have been
  /// recovered first (RecoverAll). Returns the number of topics restored.
  Result<size_t> Recover();

 private:
  struct TopicState {
    TopicConfig config;
    std::vector<uint64_t> stream_object_ids;
    uint64_t next_rr = 0;  // round-robin cursor for empty keys
  };

  Status AssignStreamLocked(uint64_t stream_object_id, uint32_t worker_index)
      REQUIRES(mu_);
  Result<uint64_t> CreateStreamObjectLocked(const TopicConfig& config)
      REQUIRES(mu_);
  Status RebalanceLocked(uint32_t worker_count) REQUIRES(mu_);
  /// Best-effort undo of a failed CreateTopic: unassigns the topic's
  /// streams and deletes every durable key the protocol wrote so far.
  void RetractTopicKeysLocked(const std::string& topic,
                              const TopicState& state,
                              const char* why) REQUIRES(mu_);

  stream::StreamObjectManager* objects_;
  kv::KvStore* meta_;
  sim::NetworkModel* bus_;
  sim::SimClock* clock_;

  mutable Mutex mu_{LockRank::kStreamDispatcher, "streaming.dispatcher"};
  std::vector<std::unique_ptr<StreamWorker>> workers_ GUARDED_BY(mu_);
  // Workers removed by a shrink. Kept alive for the dispatcher's lifetime:
  // RouteProduce/RouteFetch hand out raw StreamWorker pointers that callers
  // use after mu_ is released, so destroying a shrunk-away worker would be
  // a use-after-free under concurrent produce.
  std::vector<std::unique_ptr<StreamWorker>> retired_workers_ GUARDED_BY(mu_);
  std::vector<uint64_t> last_heartbeat_ns_ GUARDED_BY(mu_);
  std::map<std::string, TopicState> topics_ GUARDED_BY(mu_);
  std::map<uint64_t, uint32_t> stream_to_worker_ GUARDED_BY(mu_);
  uint64_t next_producer_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_DISPATCHER_H_
