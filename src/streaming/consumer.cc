#include "streaming/consumer.h"

#include "common/metrics.h"

namespace streamlake::streaming {

std::string Consumer::OffsetKey(const std::string& topic,
                                uint32_t stream) const {
  return "offsets/" + group_ + "/" + topic + "/" + std::to_string(stream);
}

Status Consumer::Subscribe(const std::string& topic) {
  SL_ASSIGN_OR_RETURN(uint32_t streams, dispatcher_->NumStreams(topic));
  std::vector<uint64_t>& positions = positions_[topic];
  positions.assign(streams, 0);
  for (uint32_t s = 0; s < streams; ++s) {
    auto committed = offsets_->Get(OffsetKey(topic, s));
    if (committed.ok()) {
      positions[s] = std::stoull(*committed);
    }
  }
  return Status::OK();
}

Result<std::vector<ConsumedMessage>> Consumer::Poll(size_t max_messages) {
  std::vector<ConsumedMessage> out;
  for (auto& [topic, positions] : positions_) {
    // The topic may have gained streams since Subscribe (partition scaling).
    SL_ASSIGN_OR_RETURN(uint32_t streams, dispatcher_->NumStreams(topic));
    if (streams > positions.size()) positions.resize(streams, 0);
    for (uint32_t s = 0; s < streams && out.size() < max_messages; ++s) {
      SL_ASSIGN_OR_RETURN(auto route, dispatcher_->RouteFetch(topic, s));
      auto records = route.worker->Fetch(route.stream_object_id, positions[s],
                                         max_messages - out.size());
      if (!records.ok()) return records.status();
      for (const stream::StreamRecord& record : *records) {
        ConsumedMessage consumed;
        consumed.message.key = record.key;
        consumed.message.value = BytesToString(record.value);
        consumed.message.timestamp = record.timestamp;
        consumed.stream_index = s;
        consumed.offset = positions[s];
        out.push_back(std::move(consumed));
        ++positions[s];
      }
    }
  }
  static Counter* polls =
      MetricsRegistry::Global().GetCounter("streaming.consumer.polls");
  static Counter* messages =
      MetricsRegistry::Global().GetCounter("streaming.consumer.messages");
  polls->Increment();
  messages->Increment(out.size());
  return out;
}

Status Consumer::CommitOffsets() {
  kv::WriteBatch batch;
  for (const auto& [topic, positions] : positions_) {
    for (uint32_t s = 0; s < positions.size(); ++s) {
      batch.Put(OffsetKey(topic, s), std::to_string(positions[s]));
    }
  }
  return offsets_->Write(batch);
}

Status Consumer::SeekToTimestamp(const std::string& topic,
                                 int64_t timestamp) {
  auto it = positions_.find(topic);
  if (it == positions_.end()) {
    return Status::InvalidArgument("not subscribed to " + topic);
  }
  for (uint32_t s = 0; s < it->second.size(); ++s) {
    SL_ASSIGN_OR_RETURN(auto route, dispatcher_->RouteFetch(topic, s));
    SL_ASSIGN_OR_RETURN(
        it->second[s],
        route.worker->FindOffsetByTimestamp(route.stream_object_id,
                                            timestamp));
  }
  return Status::OK();
}

uint64_t Consumer::position(const std::string& topic,
                            uint32_t stream_index) const {
  auto it = positions_.find(topic);
  if (it == positions_.end() || stream_index >= it->second.size()) return 0;
  return it->second[stream_index];
}

}  // namespace streamlake::streaming
