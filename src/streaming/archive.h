#ifndef STREAMLAKE_STREAMING_ARCHIVE_H_
#define STREAMLAKE_STREAMING_ARCHIVE_H_

#include <map>
#include <string>

#include "storage/object_store.h"
#include "streaming/dispatcher.h"

namespace streamlake::streaming {

/// \brief The archive block of Fig. 8: moves historical stream data into
/// cost-effective archive storage, optionally converting rows to columnar
/// format (`row_2_col`) for the EC+Col-store savings of Fig. 14(d).
class ArchiveService {
 public:
  ArchiveService(StreamDispatcher* dispatcher,
                 storage::ObjectStore* archive_store, kv::KvStore* meta)
      : dispatcher_(dispatcher), archive_store_(archive_store), meta_(meta) {}

  struct RunStats {
    uint64_t archived_records = 0;
    uint64_t source_bytes = 0;    // raw message bytes archived
    uint64_t archived_bytes = 0;  // bytes written to archive objects
    uint64_t files_written = 0;
  };

  /// Archive the unarchived tail of `topic` if it exceeds the configured
  /// threshold; `force` archives regardless of volume. One archive object
  /// is written per stream per run.
  Result<RunStats> Run(const std::string& topic, bool force = false);

 private:
  std::string OffsetKey(const std::string& topic, uint32_t stream) const;

  StreamDispatcher* dispatcher_;
  storage::ObjectStore* archive_store_;
  kv::KvStore* meta_;
  uint64_t next_file_seq_ = 0;
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_ARCHIVE_H_
