#ifndef STREAMLAKE_STREAMING_TOPIC_CONFIG_H_
#define STREAMLAKE_STREAMING_TOPIC_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "format/schema.h"
#include "table/metadata.h"

namespace streamlake::streaming {

/// The convert_2_table block of a topic configuration (Fig. 8): automatic
/// stream-to-table conversion parameters.
struct ConvertToTableConfig {
  bool enabled = false;
  format::Schema table_schema;
  std::string table_path;
  /// Partitioning of the converted table.
  table::PartitionSpec partition_spec;
  /// Convert after this many accumulated messages (Fig. 8: 10^7)...
  uint64_t split_offset = 10'000'000;
  /// ...or after this many seconds (Fig. 8: 36000).
  uint64_t split_time_sec = 36000;
  /// Drop converted messages from the stream tier (saves the second copy).
  bool delete_msg = false;
};

/// The archive block of a topic configuration (Fig. 8).
struct ArchiveConfig {
  bool enabled = false;
  /// Export target; empty = the StreamLake archive storage pool.
  std::string external_archive_url;
  /// Data volume in MB that triggers archiving (Fig. 8: 262144).
  uint64_t archive_size_mb = 262144;
  /// Archive in columnar format (EC+Col-store of Fig. 14d).
  bool row_2_col = true;
};

/// Per-topic configuration, mirroring the JSON of Fig. 8.
struct TopicConfig {
  /// Parallelism: number of streams (partitions) of the topic.
  uint32_t stream_num = 3;
  /// Max messages/second per stream; 0 = unlimited (Fig. 8: 10^6).
  uint64_t quota = 0;
  /// Serve reads through the storage-class-memory cache.
  bool scm_cache = false;
  ConvertToTableConfig convert_2_table;
  ArchiveConfig archive;

  /// Serialization for the dispatcher's fault-tolerant KV store, so the
  /// topic survives a dispatcher restart.
  void EncodeTo(Bytes* dst) const;
  static Result<TopicConfig> DecodeFrom(ByteView data);
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_TOPIC_CONFIG_H_
