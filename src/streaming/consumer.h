#ifndef STREAMLAKE_STREAMING_CONSUMER_H_
#define STREAMLAKE_STREAMING_CONSUMER_H_

#include <map>
#include <string>
#include <vector>

#include "streaming/dispatcher.h"
#include "streaming/message.h"

namespace streamlake::streaming {

/// \brief Kafka-compatible consumer (Fig. 7): subscribes to topics and
/// polls for new messages, tracking per-stream offsets.
///
/// Offsets commit to the dispatcher's KV store under the consumer group,
/// so a restarted consumer resumes where the group left off.
class Consumer {
 public:
  Consumer(StreamDispatcher* dispatcher, kv::KvStore* offsets,
           std::string group)
      : dispatcher_(dispatcher), offsets_(offsets), group_(std::move(group)) {}

  /// Subscribe and position at the group's committed offsets (or 0).
  Status Subscribe(const std::string& topic);

  /// Fetch up to `max_messages` new messages across all subscribed
  /// topics/streams. An empty result means "poll again later".
  Result<std::vector<ConsumedMessage>> Poll(size_t max_messages = 1024);

  /// Persist current positions for the group.
  Status CommitOffsets();

  /// Reposition every stream of `topic` at the first message with event
  /// time >= `timestamp` (Kafka's offsetsForTimes + seek).
  Status SeekToTimestamp(const std::string& topic, int64_t timestamp);

  /// Position of one stream (for tests and lag monitoring).
  uint64_t position(const std::string& topic, uint32_t stream_index) const;

 private:
  std::string OffsetKey(const std::string& topic, uint32_t stream) const;

  StreamDispatcher* dispatcher_;
  kv::KvStore* offsets_;
  std::string group_;
  // topic -> per-stream next offset to read.
  std::map<std::string, std::vector<uint64_t>> positions_;
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_CONSUMER_H_
