#ifndef STREAMLAKE_STREAMING_TXN_MANAGER_H_
#define STREAMLAKE_STREAMING_TXN_MANAGER_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "streaming/dispatcher.h"
#include "streaming/message.h"

namespace streamlake::streaming {

enum class TxnState { kOpen, kPrepared, kCommitted, kAborted };

/// \brief Transactional produce with exactly-once semantics via two-phase
/// commit (Section V-A, Delivery Guarantee #4).
///
/// Messages buffered under a transaction stay invisible to consumers until
/// Commit succeeds: phase 1 validates every participant (topic/stream
/// routing, quota headroom) and logs PREPARED; phase 2 appends all
/// messages and logs COMMITTED. "All results in a transaction are visible
/// or invisible at the same time" — failure anywhere before phase 2 leaves
/// nothing published, and the txn log in the KV store records the outcome.
class TransactionManager {
 public:
  TransactionManager(StreamDispatcher* dispatcher, kv::KvStore* txn_log)
      : dispatcher_(dispatcher),
        txn_log_(txn_log),
        producer_id_(dispatcher->NextProducerId()) {}

  /// Open a transaction.
  Result<uint64_t> Begin();

  /// Buffer a message under the transaction (not yet visible).
  Status Send(uint64_t txn_id, const std::string& topic,
              const Message& message);

  /// Two-phase commit: prepare all participants, then publish atomically.
  Status Commit(uint64_t txn_id);

  /// Drop all buffered messages.
  Status Abort(uint64_t txn_id);

  Result<TxnState> GetState(uint64_t txn_id) const;

 private:
  struct PendingMessage {
    std::string topic;
    Message message;
  };
  struct Txn {
    TxnState state = TxnState::kOpen;
    std::vector<PendingMessage> messages;
  };

  Status LogState(uint64_t txn_id, TxnState state);

  StreamDispatcher* dispatcher_;
  kv::KvStore* txn_log_;
  const uint64_t producer_id_;
  mutable Mutex mu_{LockRank::kTxnManager, "streaming.txn_manager"};
  std::map<uint64_t, Txn> txns_ GUARDED_BY(mu_);
  uint64_t next_txn_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, uint64_t> next_seq_ GUARDED_BY(mu_);  // per stream object
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_TXN_MANAGER_H_
