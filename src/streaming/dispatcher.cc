#include "streaming/dispatcher.h"

#include "common/hash.h"

namespace streamlake::streaming {

StreamDispatcher::StreamDispatcher(stream::StreamObjectManager* objects,
                                   kv::KvStore* meta, sim::NetworkModel* bus,
                                   sim::SimClock* clock,
                                   uint32_t initial_workers)
    : objects_(objects), meta_(meta), bus_(bus), clock_(clock) {
  for (uint32_t i = 0; i < initial_workers; ++i) {
    workers_.push_back(std::make_unique<StreamWorker>(i, objects_, bus_));
    last_heartbeat_ns_.push_back(clock_->NowNanos());
  }
}

Result<uint64_t> StreamDispatcher::CreateStreamObjectLocked(
    const TopicConfig& config) {
  stream::StreamObjectOptions options;
  options.io_quota_records_per_sec = config.quota;
  options.use_scm_cache = config.scm_cache;
  return objects_->CreateObject(options);
}

Status StreamDispatcher::AssignStreamLocked(uint64_t stream_object_id,
                                            uint32_t worker_index) {
  auto it = stream_to_worker_.find(stream_object_id);
  if (it != stream_to_worker_.end()) {
    if (it->second == worker_index) return Status::OK();
    workers_[it->second]->UnassignStream(stream_object_id);
  }
  workers_[worker_index]->AssignStream(stream_object_id);
  stream_to_worker_[stream_object_id] = worker_index;
  // Topology change recorded in the fault-tolerant KV store; refreshing
  // this mapping is the whole cost of a scaling event.
  return meta_->Put("assign/" + std::to_string(stream_object_id),
                    std::to_string(worker_index));
}

Status StreamDispatcher::CreateTopic(const std::string& topic,
                                     const TopicConfig& config) {
  MutexLock lock(&mu_);
  if (topics_.count(topic)) {
    return Status::AlreadyExists("topic " + topic);
  }
  if (config.stream_num == 0) {
    return Status::InvalidArgument("stream_num must be positive");
  }
  TopicState state;
  state.config = config;
  Status s = Status::OK();
  for (uint32_t i = 0; s.ok() && i < config.stream_num; ++i) {
    auto id = CreateStreamObjectLocked(config);
    if (!id.ok()) {
      s = id.status();
      break;
    }
    state.stream_object_ids.push_back(*id);
    // Round-robin placement "to ensure even distribution and workload
    // balancing across the cluster".
    s = AssignStreamLocked(*id, static_cast<uint32_t>(i % workers_.size()));
    if (s.ok()) {
      s = meta_->Put("topic/" + topic + "/stream/" + std::to_string(i),
                     std::to_string(*id));
    }
  }
  if (s.ok()) {
    Bytes encoded;
    config.EncodeTo(&encoded);
    s = meta_->Put("topic/" + topic + "/config", BytesToString(encoded));
  }
  if (s.ok()) {
    s = meta_->Put("topic/" + topic + "/streams",
                   std::to_string(config.stream_num));
  }
  if (!s.ok()) {
    // Roll back assignments and durable keys so a failed create leaves no
    // trace. The fresh stream objects hold no records; destroying them
    // takes a condition wait that must not run under mu_ (see
    // DeleteTopic), so their ids are simply left unreferenced.
    RetractTopicKeysLocked(topic, state, "create-topic rollback");
    return s;
  }
  // Publish last: the topic becomes routable only after every durable
  // write of the protocol has succeeded.
  topics_[topic] = std::move(state);
  return Status::OK();
}

void StreamDispatcher::RetractTopicKeysLocked(const std::string& topic,
                                              const TopicState& state,
                                              const char* why) {
  for (size_t i = 0; i < state.stream_object_ids.size(); ++i) {
    uint64_t id = state.stream_object_ids[i];
    auto assigned = stream_to_worker_.find(id);
    if (assigned != stream_to_worker_.end()) {
      workers_[assigned->second]->UnassignStream(id);
      stream_to_worker_.erase(assigned);
    }
    meta_->Delete("assign/" + std::to_string(id)).LogIgnored(why);
    meta_->Delete("topic/" + topic + "/stream/" + std::to_string(i))
        .LogIgnored(why);
  }
  meta_->Delete("topic/" + topic + "/config").LogIgnored(why);
  meta_->Delete("topic/" + topic + "/streams").LogIgnored(why);
}

Status StreamDispatcher::DeleteTopic(const std::string& topic) {
  // Detach the topic and unassign its streams under the lock; destroy the
  // stream objects outside it — DestroyObject drains in-flight appends (a
  // condition wait) and must not park every other dispatcher operation.
  TopicState state;
  {
    MutexLock lock(&mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) return Status::NotFound("topic " + topic);
    state = std::move(it->second);
    for (uint64_t id : state.stream_object_ids) {
      auto assigned = stream_to_worker_.find(id);
      if (assigned != stream_to_worker_.end()) {
        workers_[assigned->second]->UnassignStream(id);
        stream_to_worker_.erase(assigned);
      }
    }
    topics_.erase(it);
  }
  for (size_t i = 0; i < state.stream_object_ids.size(); ++i) {
    uint64_t id = state.stream_object_ids[i];
    SL_RETURN_NOT_OK(objects_->DestroyObject(id));
    SL_RETURN_NOT_OK(meta_->Delete("assign/" + std::to_string(id)));
    SL_RETURN_NOT_OK(
        meta_->Delete("topic/" + topic + "/stream/" + std::to_string(i)));
  }
  SL_RETURN_NOT_OK(meta_->Delete("topic/" + topic + "/config"));
  return meta_->Delete("topic/" + topic + "/streams");
}

Result<size_t> StreamDispatcher::Recover() {
  MutexLock lock(&mu_);
  if (!topics_.empty()) {
    return Status::InvalidArgument("recovery requires an empty dispatcher");
  }
  size_t recovered = 0;
  for (const auto& [key, value] : meta_->Scan("topic/", "topic0")) {
    constexpr std::string_view kSuffix = "/config";
    if (key.size() <= 6 + kSuffix.size() ||
        key.compare(key.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    std::string topic = key.substr(6, key.size() - 6 - kSuffix.size());
    SL_ASSIGN_OR_RETURN(TopicConfig config,
                        TopicConfig::DecodeFrom(ByteView(value)));
    TopicState state;
    state.config = config;
    SL_ASSIGN_OR_RETURN(std::string count_str,
                        meta_->Get("topic/" + topic + "/streams"));
    uint32_t streams = static_cast<uint32_t>(std::stoul(count_str));
    for (uint32_t i = 0; i < streams; ++i) {
      SL_ASSIGN_OR_RETURN(
          std::string id_str,
          meta_->Get("topic/" + topic + "/stream/" + std::to_string(i)));
      uint64_t id = std::stoull(id_str);
      if (objects_->GetObject(id) == nullptr) {
        return Status::Corruption("stream object " + id_str +
                                  " missing; recover the object manager "
                                  "first");
      }
      state.stream_object_ids.push_back(id);
      // Restore the recorded assignment, folding onto the live workers.
      uint32_t worker = i % static_cast<uint32_t>(workers_.size());
      auto assigned = meta_->Get("assign/" + id_str);
      if (assigned.ok()) {
        worker = static_cast<uint32_t>(std::stoul(*assigned)) %
                 static_cast<uint32_t>(workers_.size());
      }
      SL_RETURN_NOT_OK(AssignStreamLocked(id, worker));
    }
    state.config.stream_num = streams;
    topics_[topic] = std::move(state);
    ++recovered;
  }
  return recovered;
}

bool StreamDispatcher::HasTopic(const std::string& topic) const {
  MutexLock lock(&mu_);
  return topics_.count(topic) > 0;
}

Result<TopicConfig> StreamDispatcher::GetTopicConfig(
    const std::string& topic) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("topic " + topic);
  return it->second.config;
}

Result<uint32_t> StreamDispatcher::NumStreams(const std::string& topic) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("topic " + topic);
  return static_cast<uint32_t>(it->second.stream_object_ids.size());
}

Result<uint64_t> StreamDispatcher::StreamObjectId(const std::string& topic,
                                                  uint32_t index) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("topic " + topic);
  if (index >= it->second.stream_object_ids.size()) {
    return Status::InvalidArgument("stream index out of range");
  }
  return it->second.stream_object_ids[index];
}

Result<StreamDispatcher::Route> StreamDispatcher::RouteProduce(
    const std::string& topic, const std::string& key) {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("topic " + topic);
  TopicState& state = it->second;
  uint32_t index;
  if (key.empty()) {
    index = static_cast<uint32_t>(state.next_rr++ %
                                  state.stream_object_ids.size());
  } else {
    index = static_cast<uint32_t>(Hash64(ByteView(key)) %
                                  state.stream_object_ids.size());
  }
  Route route;
  route.stream_index = index;
  route.stream_object_id = state.stream_object_ids[index];
  route.worker = workers_[stream_to_worker_.at(route.stream_object_id)].get();
  return route;
}

Result<StreamDispatcher::Route> StreamDispatcher::RouteFetch(
    const std::string& topic, uint32_t stream_index) {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("topic " + topic);
  if (stream_index >= it->second.stream_object_ids.size()) {
    return Status::InvalidArgument("stream index out of range");
  }
  Route route;
  route.stream_index = stream_index;
  route.stream_object_id = it->second.stream_object_ids[stream_index];
  route.worker = workers_[stream_to_worker_.at(route.stream_object_id)].get();
  return route;
}

Status StreamDispatcher::RebalanceLocked(uint32_t worker_count) {
  uint32_t cursor = 0;
  for (auto& [topic, state] : topics_) {
    for (uint64_t id : state.stream_object_ids) {
      SL_RETURN_NOT_OK(AssignStreamLocked(id, cursor % worker_count));
      ++cursor;
    }
  }
  return Status::OK();
}

Status StreamDispatcher::ResizeWorkers(uint32_t count) {
  MutexLock lock(&mu_);
  if (count == 0) return Status::InvalidArgument("need at least one worker");
  for (uint32_t w = static_cast<uint32_t>(workers_.size()); w < count; ++w) {
    workers_.push_back(std::make_unique<StreamWorker>(w, objects_, bus_));
    last_heartbeat_ns_.push_back(clock_->NowNanos());
  }
  // Rebalance over the surviving workers; shrinking retires the (now
  // empty) tail afterwards. No stream data moves.
  SL_RETURN_NOT_OK(RebalanceLocked(count));
  if (count < workers_.size()) {
    for (size_t w = count; w < workers_.size(); ++w) {
      retired_workers_.push_back(std::move(workers_[w]));
    }
    workers_.resize(count);
    last_heartbeat_ns_.resize(count);
  }
  return Status::OK();
}

void StreamDispatcher::Heartbeat(uint32_t worker_index) {
  MutexLock lock(&mu_);
  if (worker_index < last_heartbeat_ns_.size()) {
    last_heartbeat_ns_[worker_index] = clock_->NowNanos();
  }
}

Result<StreamDispatcher::HealthSweepStats> StreamDispatcher::SweepDeadWorkers(
    uint64_t timeout_ns) {
  MutexLock lock(&mu_);
  HealthSweepStats stats;
  const uint64_t now = clock_->NowNanos();
  std::vector<bool> dead(workers_.size(), false);
  std::vector<uint32_t> alive;
  for (uint32_t w = 0; w < workers_.size(); ++w) {
    if (now - last_heartbeat_ns_[w] > timeout_ns) {
      dead[w] = true;
      ++stats.dead_workers;
    } else {
      alive.push_back(w);
    }
  }
  if (stats.dead_workers == 0 || alive.empty()) {
    if (alive.empty() && stats.dead_workers > 0) {
      return Status::ResourceExhausted("every stream worker is dead");
    }
    return stats;
  }
  // Topology refresh only: streams of dead workers move to live ones
  // round-robin. No data migration — the point of the disaggregation.
  size_t cursor = 0;
  std::vector<std::pair<uint64_t, uint32_t>> to_move;
  for (const auto& [stream_id, worker] : stream_to_worker_) {
    if (dead[worker]) {
      to_move.emplace_back(stream_id, alive[cursor++ % alive.size()]);
    }
  }
  for (const auto& [stream_id, target] : to_move) {
    SL_RETURN_NOT_OK(AssignStreamLocked(stream_id, target));
    ++stats.streams_reassigned;
  }
  return stats;
}

Status StreamDispatcher::AddStreams(const std::string& topic,
                                    uint32_t additional) {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("topic " + topic);
  TopicState& state = it->second;
  // Build the additions aside and commit them into the live TopicState
  // only after every durable write succeeded, so a mid-loop failure never
  // leaves the topic half-grown.
  const uint32_t base = static_cast<uint32_t>(state.stream_object_ids.size());
  std::vector<uint64_t> added;
  Status s = Status::OK();
  for (uint32_t i = 0; s.ok() && i < additional; ++i) {
    auto id = CreateStreamObjectLocked(state.config);
    if (!id.ok()) {
      s = id.status();
      break;
    }
    added.push_back(*id);
    uint32_t index = base + i;
    s = AssignStreamLocked(*id,
                           index % static_cast<uint32_t>(workers_.size()));
    if (s.ok()) {
      s = meta_->Put("topic/" + topic + "/stream/" + std::to_string(index),
                     std::to_string(*id));
    }
  }
  if (s.ok()) {
    s = meta_->Put("topic/" + topic + "/streams",
                   std::to_string(base + additional));
  }
  if (!s.ok()) {
    for (size_t i = 0; i < added.size(); ++i) {
      uint64_t id = added[i];
      auto assigned = stream_to_worker_.find(id);
      if (assigned != stream_to_worker_.end()) {
        workers_[assigned->second]->UnassignStream(id);
        stream_to_worker_.erase(assigned);
      }
      meta_->Delete("assign/" + std::to_string(id))
          .LogIgnored("add-streams rollback");
      meta_->Delete("topic/" + topic + "/stream/" +
                    std::to_string(base + static_cast<uint32_t>(i)))
          .LogIgnored("add-streams rollback");
    }
    return s;
  }
  state.stream_object_ids.insert(state.stream_object_ids.end(),
                                 added.begin(), added.end());
  state.config.stream_num = base + additional;
  return Status::OK();
}

uint32_t StreamDispatcher::num_workers() const {
  MutexLock lock(&mu_);
  return static_cast<uint32_t>(workers_.size());
}

StreamWorker* StreamDispatcher::worker(uint32_t index) {
  MutexLock lock(&mu_);
  return index < workers_.size() ? workers_[index].get() : nullptr;
}

uint64_t StreamDispatcher::NextProducerId() {
  MutexLock lock(&mu_);
  return next_producer_id_++;
}

}  // namespace streamlake::streaming
