#include "streaming/txn_manager.h"

namespace streamlake::streaming {

namespace {

const char* StateName(TxnState state) {
  switch (state) {
    case TxnState::kOpen:
      return "OPEN";
    case TxnState::kPrepared:
      return "PREPARED";
    case TxnState::kCommitted:
      return "COMMITTED";
    case TxnState::kAborted:
      return "ABORTED";
  }
  return "?";
}

}  // namespace

Result<uint64_t> TransactionManager::Begin() {
  MutexLock lock(&mu_);
  uint64_t id = next_txn_id_++;
  txns_[id] = Txn{};
  SL_RETURN_NOT_OK(LogState(id, TxnState::kOpen));
  return id;
}

Status TransactionManager::LogState(uint64_t txn_id, TxnState state) {
  return txn_log_->Put("txn/" + std::to_string(txn_id), StateName(state));
}

Status TransactionManager::Send(uint64_t txn_id, const std::string& topic,
                                const Message& message) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  if (it->second.state != TxnState::kOpen) {
    return Status::InvalidArgument("transaction not open");
  }
  it->second.messages.push_back(PendingMessage{topic, message});
  return Status::OK();
}

Status TransactionManager::Commit(uint64_t txn_id) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  Txn& txn = it->second;
  if (txn.state != TxnState::kOpen) {
    return Status::InvalidArgument("transaction not open");
  }

  // Phase 1 (prepare): resolve every participant route up front; any
  // routing/validation failure aborts before a single byte is published.
  struct Participant {
    StreamDispatcher::Route route;
    const PendingMessage* pending;
  };
  std::vector<Participant> participants;
  participants.reserve(txn.messages.size());
  for (const PendingMessage& pending : txn.messages) {
    auto route = dispatcher_->RouteProduce(pending.topic, pending.message.key);
    if (!route.ok()) {
      txn.state = TxnState::kAborted;
      SL_RETURN_NOT_OK(LogState(txn_id, TxnState::kAborted));
      return Status::Aborted("prepare failed: " + route.status().ToString());
    }
    participants.push_back(Participant{*route, &pending});
  }
  txn.state = TxnState::kPrepared;
  SL_RETURN_NOT_OK(LogState(txn_id, TxnState::kPrepared));

  // Phase 2 (commit): publish everything. With the PREPARED record
  // durable, a crashed coordinator re-drives this phase; idempotent
  // producer sequences make the re-drive safe.
  for (const Participant& p : participants) {
    uint64_t& next = next_seq_[p.route.stream_object_id];
    uint64_t seq = ++next;
    auto offset = p.route.worker->Produce(p.route.stream_object_id,
                                          {p.pending->message},
                                          producer_id_, seq);
    if (!offset.ok()) {
      // Participants already published stay published; the guarantee is
      // provided by the re-drive. Surface the failure.
      return offset.status();
    }
  }
  txn.state = TxnState::kCommitted;
  SL_RETURN_NOT_OK(LogState(txn_id, TxnState::kCommitted));
  txn.messages.clear();
  return Status::OK();
}

Status TransactionManager::Abort(uint64_t txn_id) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  if (it->second.state == TxnState::kCommitted) {
    return Status::InvalidArgument("transaction already committed");
  }
  it->second.state = TxnState::kAborted;
  it->second.messages.clear();
  return LogState(txn_id, TxnState::kAborted);
}

Result<TxnState> TransactionManager::GetState(uint64_t txn_id) const {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  return it->second.state;
}

}  // namespace streamlake::streaming
