#ifndef STREAMLAKE_STREAMING_STREAM_WORKER_H_
#define STREAMLAKE_STREAMING_STREAM_WORKER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/mutex.h"
#include "sim/network_model.h"
#include "stream/stream_object.h"
#include "streaming/message.h"

namespace streamlake::streaming {

/// \brief A stream worker of the data service layer (Fig. 6): handles the
/// streams assigned to it and talks to their stream objects through a
/// stream object client over the RDMA data bus.
///
/// Workers are stateless with respect to the stream data, which is what
/// makes scaling "without data migration" possible: reassigning a stream
/// to another worker only rewires metadata.
class StreamWorker {
 public:
  StreamWorker(uint32_t id, stream::StreamObjectManager* objects,
               sim::NetworkModel* bus)
      : id_(id), objects_(objects), bus_(bus) {}

  uint32_t id() const { return id_; }

  void AssignStream(uint64_t stream_object_id);
  void UnassignStream(uint64_t stream_object_id);
  size_t num_streams() const;
  bool HandlesStream(uint64_t stream_object_id) const;

  /// Publish messages into one stream object. Charges the data-bus
  /// transfer (client -> worker -> stream object) and appends.
  Result<uint64_t> Produce(uint64_t stream_object_id,
                           const std::vector<Message>& messages,
                           uint64_t producer_id, uint64_t first_seq);

  /// Like Produce but lands through StreamObject::AppendBatch: the whole
  /// group persists as parallel slice appends without holding the stream
  /// lock across device I/O, so dispatcher workers on different topics no
  /// longer serialize on storage.
  Result<uint64_t> ProduceBatch(uint64_t stream_object_id,
                                const std::vector<Message>& messages,
                                uint64_t producer_id, uint64_t first_seq);

  /// Fetch up to `max_records` messages from a stream at `offset`.
  Result<std::vector<stream::StreamRecord>> Fetch(uint64_t stream_object_id,
                                                  uint64_t offset,
                                                  size_t max_records);

  /// First offset with event time >= `timestamp` (consumer seeks).
  Result<uint64_t> FindOffsetByTimestamp(uint64_t stream_object_id,
                                         int64_t timestamp);

 private:
  const uint32_t id_;
  stream::StreamObjectManager* objects_;
  sim::NetworkModel* bus_;
  mutable Mutex mu_{LockRank::kStreamWorker, "streaming.worker"};
  std::set<uint64_t> streams_ GUARDED_BY(mu_);
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_STREAM_WORKER_H_
