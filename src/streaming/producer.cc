#include "streaming/producer.h"

#include "common/metrics.h"

namespace streamlake::streaming {

Status Producer::Gate(uint64_t ops, uint64_t bytes) {
  if (admission_ == nullptr) return Status::OK();
  auto ticket = admission_blocking_
                    ? admission_->AdmitBlocking(tenant_, AdmitOp::kProduce,
                                                ops, bytes)
                    : admission_->Admit(tenant_, AdmitOp::kProduce, ops,
                                        bytes);
  return ticket.status();
}

Result<uint64_t> Producer::Send(const std::string& topic,
                                const Message& message) {
  static Counter* sends =
      MetricsRegistry::Global().GetCounter("streaming.producer.messages");
  SL_RETURN_NOT_OK(Gate(1, message.ByteSize()));
  sends->Increment();
  SL_ASSIGN_OR_RETURN(auto route,
                      dispatcher_->RouteProduce(topic, message.key));
  uint64_t& next = next_seq_[route.stream_object_id];
  uint64_t seq = ++next;
  auto offset = route.worker->Produce(route.stream_object_id, {message},
                                      producer_id_, seq);
  if (offset.ok()) {
    last_ = LastSend{topic, message, seq};
    has_last_ = true;
  }
  return offset;
}

Status Producer::SendBatch(const std::string& topic,
                           const std::vector<Message>& messages) {
  static Counter* sends =
      MetricsRegistry::Global().GetCounter("streaming.producer.messages");
  // One admission pass covers the whole batch: `ops` tokens equal to the
  // batch size plus its total payload bytes, so batching neither dodges
  // nor double-pays the quota.
  uint64_t batch_bytes = 0;
  for (const Message& message : messages) batch_bytes += message.ByteSize();
  SL_RETURN_NOT_OK(Gate(messages.size(), batch_bytes));
  // Group by the stream object each key routes to (preserving per-object
  // message order), reserve a contiguous producer-sequence block per
  // group, and publish every group through the batched worker path: one
  // AppendBatch per stream object instead of one storage round trip per
  // message.
  struct Group {
    StreamDispatcher::Route route;
    std::vector<Message> messages;
  };
  std::map<uint64_t, Group> groups;
  for (const Message& message : messages) {
    SL_ASSIGN_OR_RETURN(auto route,
                        dispatcher_->RouteProduce(topic, message.key));
    auto [it, inserted] = groups.try_emplace(route.stream_object_id);
    if (inserted) it->second.route = route;
    it->second.messages.push_back(message);
  }
  for (auto& [object_id, group] : groups) {
    uint64_t& next = next_seq_[object_id];
    uint64_t first_seq = next + 1;
    next += group.messages.size();
    SL_ASSIGN_OR_RETURN(
        [[maybe_unused]] uint64_t offset,
        group.route.worker->ProduceBatch(object_id, group.messages,
                                         producer_id_, first_seq));
    sends->Increment(group.messages.size());
  }
  return Status::OK();
}

Result<uint64_t> Producer::ResendLast() {
  if (!has_last_) return Status::InvalidArgument("nothing to resend");
  SL_ASSIGN_OR_RETURN(auto route,
                      dispatcher_->RouteProduce(last_.topic, last_.message.key));
  // Same (producer_id, seq): the stream object identifies the duplicate.
  return route.worker->Produce(route.stream_object_id, {last_.message},
                               producer_id_, last_.seq);
}

}  // namespace streamlake::streaming
