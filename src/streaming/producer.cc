#include "streaming/producer.h"

#include "common/metrics.h"

namespace streamlake::streaming {

Result<uint64_t> Producer::Send(const std::string& topic,
                                const Message& message) {
  static Counter* sends =
      MetricsRegistry::Global().GetCounter("streaming.producer.messages");
  sends->Increment();
  SL_ASSIGN_OR_RETURN(auto route,
                      dispatcher_->RouteProduce(topic, message.key));
  uint64_t& next = next_seq_[route.stream_object_id];
  uint64_t seq = ++next;
  auto offset = route.worker->Produce(route.stream_object_id, {message},
                                      producer_id_, seq);
  if (offset.ok()) {
    last_ = LastSend{topic, message, seq};
    has_last_ = true;
  }
  return offset;
}

Status Producer::SendBatch(const std::string& topic,
                           const std::vector<Message>& messages) {
  for (const Message& message : messages) {
    SL_ASSIGN_OR_RETURN([[maybe_unused]] uint64_t offset,
                        Send(topic, message));
  }
  return Status::OK();
}

Result<uint64_t> Producer::ResendLast() {
  if (!has_last_) return Status::InvalidArgument("nothing to resend");
  SL_ASSIGN_OR_RETURN(auto route,
                      dispatcher_->RouteProduce(last_.topic, last_.message.key));
  // Same (producer_id, seq): the stream object identifies the duplicate.
  return route.worker->Produce(route.stream_object_id, {last_.message},
                               producer_id_, last_.seq);
}

}  // namespace streamlake::streaming
