#ifndef STREAMLAKE_STREAMING_PRODUCER_H_
#define STREAMLAKE_STREAMING_PRODUCER_H_

#include <map>
#include <string>
#include <vector>

#include "streaming/dispatcher.h"
#include "streaming/message.h"

namespace streamlake::streaming {

/// \brief Kafka-compatible producer (Fig. 7): publishes messages to topics
/// through the dispatcher's routing.
///
/// Every message carries a (producer_id, sequence) pair, so a network
/// retry (Resend) is deduplicated by the stream object — idempotent writes.
class Producer {
 public:
  explicit Producer(StreamDispatcher* dispatcher)
      : dispatcher_(dispatcher),
        producer_id_(dispatcher->NextProducerId()) {}

  /// Publish one message; returns the offset it landed at in its stream.
  Result<uint64_t> Send(const std::string& topic, const Message& message);

  /// Publish a batch routed by each message's key.
  Status SendBatch(const std::string& topic,
                   const std::vector<Message>& messages);

  /// Re-send the last Send() verbatim, as a client would after a timeout.
  /// The duplicate is dropped server-side (same producer sequence).
  Result<uint64_t> ResendLast();

  uint64_t producer_id() const { return producer_id_; }

 private:
  struct LastSend {
    std::string topic;
    Message message;
    uint64_t seq = 0;
  };

  StreamDispatcher* dispatcher_;
  const uint64_t producer_id_;
  std::map<uint64_t, uint64_t> next_seq_;  // per stream object
  LastSend last_;
  bool has_last_ = false;
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_PRODUCER_H_
