#ifndef STREAMLAKE_STREAMING_PRODUCER_H_
#define STREAMLAKE_STREAMING_PRODUCER_H_

#include <map>
#include <string>
#include <vector>

#include "common/admission_gate.h"
#include "streaming/dispatcher.h"
#include "streaming/message.h"

namespace streamlake::streaming {

/// \brief Kafka-compatible producer (Fig. 7): publishes messages to topics
/// through the dispatcher's routing.
///
/// Every message carries a (producer_id, sequence) pair, so a network
/// retry (Resend) is deduplicated by the stream object — idempotent writes.
class Producer {
 public:
  explicit Producer(StreamDispatcher* dispatcher)
      : dispatcher_(dispatcher),
        producer_id_(dispatcher->NextProducerId()) {}

  /// Publish one message; returns the offset it landed at in its stream.
  Result<uint64_t> Send(const std::string& topic, const Message& message);

  /// Publish a batch routed by each message's key.
  Status SendBatch(const std::string& topic,
                   const std::vector<Message>& messages);

  /// Re-send the last Send() verbatim, as a client would after a timeout.
  /// The duplicate is dropped server-side (same producer sequence).
  /// Retries are not re-metered: the original send already paid admission,
  /// and the duplicate is dropped server-side anyway.
  Result<uint64_t> ResendLast();

  /// Gate every Send/SendBatch through per-tenant admission as `tenant`.
  /// Blocking (the default) is producer backpressure: an over-quota send
  /// waits on the simulated clock until its throttle window passes, then
  /// proceeds — kResourceExhausted only when the tenant's waiter queue is
  /// full. Non-blocking sends shed immediately instead of waiting.
  void SetAdmission(AdmissionGate* gate, std::string tenant,
                    bool blocking = true) {
    admission_ = gate;
    tenant_ = std::move(tenant);
    admission_blocking_ = blocking;
  }

  uint64_t producer_id() const { return producer_id_; }

 private:
  /// Pass the admission gate for `ops` messages totalling `bytes`.
  Status Gate(uint64_t ops, uint64_t bytes);

  struct LastSend {
    std::string topic;
    Message message;
    uint64_t seq = 0;
  };

  StreamDispatcher* dispatcher_;
  const uint64_t producer_id_;
  AdmissionGate* admission_ = nullptr;  // optional per-tenant QoS gate
  std::string tenant_;
  bool admission_blocking_ = true;
  std::map<uint64_t, uint64_t> next_seq_;  // per stream object
  LastSend last_;
  bool has_last_ = false;
};

}  // namespace streamlake::streaming

#endif  // STREAMLAKE_STREAMING_PRODUCER_H_
