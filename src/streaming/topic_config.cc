#include "streaming/topic_config.h"

namespace streamlake::streaming {

void TopicConfig::EncodeTo(Bytes* dst) const {
  PutVarint64(dst, stream_num);
  PutVarint64(dst, quota);
  dst->push_back(scm_cache ? 1 : 0);

  dst->push_back(convert_2_table.enabled ? 1 : 0);
  convert_2_table.table_schema.EncodeTo(dst);
  PutLengthPrefixed(dst, std::string_view(convert_2_table.table_path));
  convert_2_table.partition_spec.EncodeTo(dst);
  PutVarint64(dst, convert_2_table.split_offset);
  PutVarint64(dst, convert_2_table.split_time_sec);
  dst->push_back(convert_2_table.delete_msg ? 1 : 0);

  dst->push_back(archive.enabled ? 1 : 0);
  PutLengthPrefixed(dst, std::string_view(archive.external_archive_url));
  PutVarint64(dst, archive.archive_size_mb);
  dst->push_back(archive.row_2_col ? 1 : 0);
}

Result<TopicConfig> TopicConfig::DecodeFrom(ByteView data) {
  Decoder dec(data);
  TopicConfig config;
  uint64_t streams;
  if (!dec.GetVarint(&streams) || !dec.GetVarint(&config.quota)) {
    return Status::Corruption("topic config header");
  }
  config.stream_num = static_cast<uint32_t>(streams);
  auto get_bool = [&dec](bool* out) {
    if (dec.Remaining() < 1) return false;
    *out = *dec.position() != 0;
    dec.Skip(1);
    return true;
  };
  if (!get_bool(&config.scm_cache)) return Status::Corruption("scm flag");

  if (!get_bool(&config.convert_2_table.enabled)) {
    return Status::Corruption("convert flag");
  }
  SL_ASSIGN_OR_RETURN(config.convert_2_table.table_schema,
                      format::Schema::DecodeFrom(&dec));
  if (!dec.GetString(&config.convert_2_table.table_path)) {
    return Status::Corruption("table path");
  }
  SL_ASSIGN_OR_RETURN(config.convert_2_table.partition_spec,
                      table::PartitionSpec::DecodeFrom(&dec));
  if (!dec.GetVarint(&config.convert_2_table.split_offset) ||
      !dec.GetVarint(&config.convert_2_table.split_time_sec)) {
    return Status::Corruption("convert triggers");
  }
  if (!get_bool(&config.convert_2_table.delete_msg)) {
    return Status::Corruption("delete_msg flag");
  }

  if (!get_bool(&config.archive.enabled)) {
    return Status::Corruption("archive flag");
  }
  if (!dec.GetString(&config.archive.external_archive_url) ||
      !dec.GetVarint(&config.archive.archive_size_mb)) {
    return Status::Corruption("archive fields");
  }
  if (!get_bool(&config.archive.row_2_col)) {
    return Status::Corruption("row_2_col flag");
  }
  return config;
}

}  // namespace streamlake::streaming
