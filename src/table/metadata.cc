#include "table/metadata.h"

#include <set>

namespace streamlake::table {

namespace {

// Stats flag bits; mirrors the LakeFile footer codec (append-only).
constexpr uint8_t kStatsMinMax = 1;
constexpr uint8_t kStatsExtended = 2;

void EncodeStats(Bytes* dst, const format::ColumnStats& stats) {
  uint8_t flag = 0;
  if (stats.min.has_value() && stats.max.has_value()) flag |= kStatsMinMax;
  if (stats.has_extended) flag |= kStatsExtended;
  dst->push_back(flag);
  if (flag & kStatsMinMax) {
    format::EncodeValue(dst, *stats.min);
    format::EncodeValue(dst, *stats.max);
  }
  if (flag & kStatsExtended) {
    PutVarint64(dst, stats.null_count);
    PutVarint64(dst, stats.ndv);
    uint64_t bits;
    std::memcpy(&bits, &stats.avg_width, 8);
    PutFixed64(dst, bits);
  }
}

Result<format::ColumnStats> DecodeStats(Decoder* dec) {
  format::ColumnStats stats;
  if (dec->Remaining() < 1) return Status::Corruption("stats flag");
  uint8_t flag = *dec->position();
  dec->Skip(1);
  if (flag & kStatsMinMax) {
    SL_ASSIGN_OR_RETURN(format::Value min, format::DecodeValue(dec));
    SL_ASSIGN_OR_RETURN(format::Value max, format::DecodeValue(dec));
    stats.min = std::move(min);
    stats.max = std::move(max);
  }
  if (flag & kStatsExtended) {
    stats.has_extended = true;
    uint64_t bits;
    if (!dec->GetVarint(&stats.null_count) || !dec->GetVarint(&stats.ndv) ||
        !dec->GetFixed64(&bits)) {
      return Status::Corruption("stats: extended");
    }
    std::memcpy(&stats.avg_width, &bits, 8);
  }
  return stats;
}

}  // namespace

// ---------------- PartitionSpec ----------------

Result<std::string> PartitionSpec::PartitionOf(const format::Schema& schema,
                                               const format::Row& row) const {
  if (transform == Transform::kNone) return std::string();
  int col = schema.FieldIndex(column);
  if (col < 0) {
    return Status::InvalidArgument("partition column " + column + " missing");
  }
  const format::Value& v = row.fields[col];
  switch (transform) {
    case Transform::kIdentity:
      return format::ValueToString(v);
    case Transform::kDay: {
      if (format::TypeOf(v) != format::DataType::kInt64) {
        return Status::InvalidArgument("day() requires int64 seconds");
      }
      return "day=" + std::to_string(std::get<int64_t>(v) / 86400);
    }
    case Transform::kMonth: {
      if (format::TypeOf(v) != format::DataType::kInt64) {
        return Status::InvalidArgument("month() requires int64 seconds");
      }
      return "month=" + std::to_string(std::get<int64_t>(v) / (86400 * 30));
    }
    case Transform::kNone:
      return std::string();
  }
  return std::string();
}

void PartitionSpec::EncodeTo(Bytes* dst) const {
  dst->push_back(static_cast<uint8_t>(transform));
  PutLengthPrefixed(dst, std::string_view(column));
}

Result<PartitionSpec> PartitionSpec::DecodeFrom(Decoder* dec) {
  PartitionSpec spec;
  if (dec->Remaining() < 1) return Status::Corruption("partition transform");
  spec.transform = static_cast<Transform>(*dec->position());
  dec->Skip(1);
  if (!dec->GetString(&spec.column)) {
    return Status::Corruption("partition column");
  }
  return spec;
}

// ---------------- DataFileMeta ----------------

void DataFileMeta::EncodeTo(Bytes* dst) const {
  PutLengthPrefixed(dst, std::string_view(path));
  PutLengthPrefixed(dst, std::string_view(partition));
  PutVarint64(dst, record_count);
  PutVarint64(dst, file_bytes);
  PutVarint64(dst, added_seq);
  PutVarint64(dst, column_stats.size());
  for (const auto& [column, stats] : column_stats) {
    PutLengthPrefixed(dst, std::string_view(column));
    EncodeStats(dst, stats);
  }
}

Result<DataFileMeta> DataFileMeta::DecodeFrom(Decoder* dec) {
  DataFileMeta meta;
  if (!dec->GetString(&meta.path) || !dec->GetString(&meta.partition) ||
      !dec->GetVarint(&meta.record_count) ||
      !dec->GetVarint(&meta.file_bytes) || !dec->GetVarint(&meta.added_seq)) {
    return Status::Corruption("datafile meta");
  }
  uint64_t num_stats;
  if (!dec->GetVarint(&num_stats)) return Status::Corruption("stats count");
  for (uint64_t i = 0; i < num_stats; ++i) {
    std::string column;
    if (!dec->GetString(&column)) return Status::Corruption("stats column");
    SL_ASSIGN_OR_RETURN(format::ColumnStats stats, DecodeStats(dec));
    meta.column_stats[column] = std::move(stats);
  }
  return meta;
}

// ---------------- DeleteRecord ----------------

void DeleteRecord::EncodeTo(Bytes* dst) const {
  PutVarint64(dst, seq);
  predicate.EncodeTo(dst);
}

Result<DeleteRecord> DeleteRecord::DecodeFrom(Decoder* dec) {
  DeleteRecord record;
  if (!dec->GetVarint(&record.seq)) return Status::Corruption("delete seq");
  SL_ASSIGN_OR_RETURN(record.predicate, query::Conjunction::DecodeFrom(dec));
  return record;
}

// ---------------- CommitFile ----------------

std::vector<std::string> CommitFile::TouchedPartitions() const {
  std::set<std::string> partitions;
  for (const DataFileMeta& f : added) partitions.insert(f.partition);
  for (const DataFileMeta& f : removed) partitions.insert(f.partition);
  return std::vector<std::string>(partitions.begin(), partitions.end());
}

size_t CommitFile::ByteSize() const {
  Bytes tmp;
  EncodeTo(&tmp);
  return tmp.size();
}

void CommitFile::EncodeTo(Bytes* dst) const {
  PutVarint64(dst, commit_seq);
  PutVarint64Signed(dst, timestamp);
  PutVarint64(dst, added.size());
  for (const DataFileMeta& f : added) f.EncodeTo(dst);
  PutVarint64(dst, removed.size());
  for (const DataFileMeta& f : removed) f.EncodeTo(dst);
  PutVarint64(dst, deletes.size());
  for (const DeleteRecord& d : deletes) d.EncodeTo(dst);
}

Result<CommitFile> CommitFile::DecodeFrom(ByteView data) {
  Decoder dec(data);
  CommitFile commit;
  uint64_t added_count, removed_count;
  if (!dec.GetVarint(&commit.commit_seq) ||
      !dec.GetVarintSigned(&commit.timestamp) ||
      !dec.GetVarint(&added_count)) {
    return Status::Corruption("commit header");
  }
  for (uint64_t i = 0; i < added_count; ++i) {
    SL_ASSIGN_OR_RETURN(DataFileMeta meta, DataFileMeta::DecodeFrom(&dec));
    commit.added.push_back(std::move(meta));
  }
  if (!dec.GetVarint(&removed_count)) {
    return Status::Corruption("commit removed count");
  }
  for (uint64_t i = 0; i < removed_count; ++i) {
    SL_ASSIGN_OR_RETURN(DataFileMeta meta, DataFileMeta::DecodeFrom(&dec));
    commit.removed.push_back(std::move(meta));
  }
  uint64_t delete_count;
  if (!dec.GetVarint(&delete_count)) {
    return Status::Corruption("commit delete count");
  }
  if (delete_count > dec.Remaining()) {
    return Status::Corruption("commit delete count bogus");
  }
  for (uint64_t i = 0; i < delete_count; ++i) {
    SL_ASSIGN_OR_RETURN(DeleteRecord record, DeleteRecord::DecodeFrom(&dec));
    commit.deletes.push_back(std::move(record));
  }
  return commit;
}

// ---------------- SnapshotMeta ----------------

void SnapshotMeta::EncodeTo(Bytes* dst) const {
  PutVarint64(dst, snapshot_id);
  PutVarint64Signed(dst, timestamp);
  PutVarint64(dst, commit_seqs.size());
  for (uint64_t seq : commit_seqs) PutVarint64(dst, seq);
  PutVarint64(dst, total_files);
  PutVarint64(dst, total_rows);
  PutVarint64(dst, added_files);
  PutVarint64(dst, removed_files);
  PutVarint64(dst, added_rows);
  PutVarint64(dst, removed_rows);
}

Result<SnapshotMeta> SnapshotMeta::DecodeFrom(ByteView data) {
  Decoder dec(data);
  SnapshotMeta snap;
  uint64_t count;
  if (!dec.GetVarint(&snap.snapshot_id) ||
      !dec.GetVarintSigned(&snap.timestamp) || !dec.GetVarint(&count)) {
    return Status::Corruption("snapshot header");
  }
  if (count > dec.Remaining()) {
    return Status::Corruption("snapshot commit count bogus");
  }
  snap.commit_seqs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq;
    if (!dec.GetVarint(&seq)) return Status::Corruption("snapshot commits");
    snap.commit_seqs.push_back(seq);
  }
  if (!dec.GetVarint(&snap.total_files) || !dec.GetVarint(&snap.total_rows) ||
      !dec.GetVarint(&snap.added_files) || !dec.GetVarint(&snap.removed_files) ||
      !dec.GetVarint(&snap.added_rows) || !dec.GetVarint(&snap.removed_rows)) {
    return Status::Corruption("snapshot stats");
  }
  return snap;
}

// ---------------- TableInfo ----------------

void TableInfo::EncodeTo(Bytes* dst) const {
  PutVarint64(dst, table_id);
  PutLengthPrefixed(dst, std::string_view(name));
  PutLengthPrefixed(dst, std::string_view(path));
  schema.EncodeTo(dst);
  partition_spec.EncodeTo(dst);
  PutVarint64(dst, current_snapshot_id);
  PutVarint64(dst, next_commit_seq);
  PutVarint64(dst, next_snapshot_id);
  PutVarint64(dst, next_file_id);
  PutVarint64Signed(dst, created_at);
  PutVarint64Signed(dst, modified_at);
  dst->push_back(soft_deleted ? 1 : 0);
  PutVarint64(dst, snapshot_log.size());
  for (const auto& [id, ts] : snapshot_log) {
    PutVarint64(dst, id);
    PutVarint64Signed(dst, ts);
  }
}

Result<TableInfo> TableInfo::DecodeFrom(ByteView data) {
  Decoder dec(data);
  TableInfo info;
  if (!dec.GetVarint(&info.table_id) || !dec.GetString(&info.name) ||
      !dec.GetString(&info.path)) {
    return Status::Corruption("table info header");
  }
  SL_ASSIGN_OR_RETURN(info.schema, format::Schema::DecodeFrom(&dec));
  SL_ASSIGN_OR_RETURN(info.partition_spec, PartitionSpec::DecodeFrom(&dec));
  if (!dec.GetVarint(&info.current_snapshot_id) ||
      !dec.GetVarint(&info.next_commit_seq) ||
      !dec.GetVarint(&info.next_snapshot_id) ||
      !dec.GetVarint(&info.next_file_id) ||
      !dec.GetVarintSigned(&info.created_at) ||
      !dec.GetVarintSigned(&info.modified_at)) {
    return Status::Corruption("table info counters");
  }
  if (dec.Remaining() < 1) return Status::Corruption("table info flags");
  info.soft_deleted = *dec.position() != 0;
  dec.Skip(1);
  uint64_t log_size;
  if (!dec.GetVarint(&log_size)) return Status::Corruption("snapshot log");
  for (uint64_t i = 0; i < log_size; ++i) {
    uint64_t id;
    int64_t ts;
    if (!dec.GetVarint(&id) || !dec.GetVarintSigned(&ts)) {
      return Status::Corruption("snapshot log entry");
    }
    info.snapshot_log.emplace_back(id, ts);
  }
  return info;
}

}  // namespace streamlake::table
