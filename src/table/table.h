#ifndef STREAMLAKE_TABLE_TABLE_H_
#define STREAMLAKE_TABLE_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "query/executor.h"
#include "sim/clock.h"
#include "sim/network_model.h"
#include "storage/object_store.h"
#include "table/metadata_store.h"

namespace streamlake {
class ThreadPool;
}  // namespace streamlake

namespace streamlake::table {

class DecodedBlockCache;

/// How DELETE is executed (Section VI-A discusses the query cost of
/// "merge-on-read tables").
enum class DeleteMode {
  /// Rewrite affected files immediately (expensive writes, cheap reads).
  kCopyOnWrite,
  /// Record a delete predicate; readers mask matching rows until
  /// compaction applies the delete physically (cheap writes, read cost
  /// grows with outstanding deletes).
  kMergeOnRead,
};

struct TableOptions {
  /// Max rows per data file written by one Insert (ingestion granularity —
  /// streaming ingestion with small batches is what creates the small-file
  /// problem LakeBrain compacts away).
  size_t max_rows_per_file = 65536;
  /// Binpack target for compaction ("target file size").
  uint64_t target_file_bytes = 4ULL << 20;
  DeleteMode delete_mode = DeleteMode::kCopyOnWrite;
  format::LakeFileOptions file_options;
};

struct SelectOptions {
  /// Push filters + aggregation into the storage side; off ships whole
  /// files to the compute engine.
  bool pushdown = true;
  /// Compute-engine memory (Fig. 15b); 0 = unlimited. Exceeding it fails
  /// with OutOfMemory.
  uint64_t memory_budget_bytes = 0;
  /// Time travel: read the table as of this timestamp (seconds); -1 = head.
  int64_t as_of_timestamp = -1;
  /// Or pin an explicit snapshot id; 0 = pick by time/head.
  uint64_t snapshot_id = 0;
};

struct SelectMetrics {
  /// Delta of the process-wide `table.metadata.*` registry counters over
  /// this query (see MetadataCounters::Capture).
  MetadataCounters metadata;
  uint64_t files_scanned = 0;
  uint64_t files_skipped = 0;      // skipped via partition/file stats
  uint64_t row_groups_scanned = 0;
  uint64_t row_groups_skipped = 0;
  uint64_t data_bytes_read = 0;    // bytes pulled from the storage pools
  uint64_t data_bytes_skipped = 0; // bytes avoided by skipping
  uint64_t bytes_to_compute = 0;   // bytes shipped over the compute link
  uint64_t peak_memory_bytes = 0;  // compute-side working set
  uint64_t elapsed_ns = 0;         // simulated wall time of the query
  // Late-materialization accounting (cache hits decode nothing):
  uint64_t bytes_decoded = 0;      // uncompressed chunk bytes decoded
  uint64_t columns_decoded = 0;    // column chunks decoded
  uint64_t rows_materialized = 0;  // rows materialized after selection
  uint64_t dict_code_prunes = 0;   // groups short-circuited in code space
};

struct CompactionResult {
  uint64_t files_before = 0;
  uint64_t files_after = 0;
  uint64_t bytes_rewritten = 0;
};

/// Which table columns a scan must materialize (projection ∪ predicate ∪
/// join-key ∪ group-by columns). Default = all columns (SELECT *). With a
/// restricted set, non-required fields of returned rows carry NULL — the
/// scan never decodes their chunks.
struct ColumnSelection {
  bool all = true;
  std::vector<int> columns;  // sorted, unique; valid when !all

  static ColumnSelection All() { return ColumnSelection{}; }
  static ColumnSelection Of(std::vector<int> cols) {
    return ColumnSelection{false, std::move(cols)};
  }
};

/// Aggregated per-column footer statistics over the live files of the head
/// snapshot; index parallels the table schema. `ndv` is an upper-bound
/// estimate (per-chunk exact NDVs summed, capped at the non-NULL row
/// count).
struct ColumnFooterStats {
  uint64_t rows = 0;
  uint64_t null_count = 0;
  uint64_t ndv = 0;
  double avg_width = 0.0;
};

/// \brief Receiver of filtered scan fragments (ScanInto). One fragment per
/// pruned-in data file, identified by its deterministic file-order index.
/// ConsumeFragment is called concurrently from scan-pool jobs — the sink
/// synchronizes internally (its lock ranks below kTableScanBarrier so a
/// job can append while the query thread waits on the barrier).
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual Status ConsumeFragment(size_t fragment,
                                 std::vector<format::Row> rows) = 0;
};

/// Row counters of one ScanInto pass, merged in fragment order.
struct ScanTotals {
  uint64_t rows_scanned = 0;  // visible rows decoded from survivors
  uint64_t rows_matched = 0;  // rows passing the pushdown filter
  size_t fragments = 0;       // pruned-in data files
};

/// \brief One lakehouse table object (Section V-B): ACID inserts, reads
/// with data skipping and pushdown, deletes/updates, snapshots with time
/// travel, and the compaction primitive LakeBrain drives.
///
/// Concurrency: multiple readers + one writer per commit, with optimistic
/// validation — rewrite commits (delete/update/compaction) fail with
/// Conflict when a commit after their base touched the same partitions.
class Table {
 public:
  /// `scan_pool` (optional) parallelizes Select across data files;
  /// `block_cache` (optional) serves repeat reads of decoded row groups.
  /// Both are shared across tables and owned by the core facade.
  Table(std::string name, MetadataStore* meta, storage::ObjectStore* objects,
        sim::SimClock* clock, sim::NetworkModel* compute_link,
        TableOptions options, ThreadPool* scan_pool = nullptr,
        DecodedBlockCache* block_cache = nullptr);

  const std::string& name() const { return name_; }

  /// INSERT: persist rows as data files under their partitions, then
  /// commit (metadata caching per Fig. 9 when accelerated).
  Status Insert(const std::vector<format::Row>& rows);

  /// SELECT with pruning, optional pushdown, optional time travel.
  Result<query::QueryResult> Select(const query::QuerySpec& spec,
                                    const SelectOptions& options = {},
                                    SelectMetrics* metrics = nullptr);

  /// Resolve the snapshot a Select with `options` would read (explicit id,
  /// time travel, or head). Multi-table queries pin one snapshot per table
  /// up front so no scan observes a torn cross-table state.
  Result<uint64_t> ResolveSnapshot(const SelectOptions& options) const;

  /// Plan-tree scan leaf: stream the rows matching `where` into `sink`,
  /// one fragment per surviving data file, with the same pruning,
  /// parallel fan-out, and deterministic fragment order as Select.
  /// Fragments are delivered concurrently from scan-pool jobs; totals and
  /// `metrics` (accumulated, not reset — callers own per-query capture)
  /// merge in file order with first failure winning. Only `required`
  /// columns (plus predicate columns) are decoded and materialized;
  /// omitted fields of delivered rows are NULL.
  Result<ScanTotals> ScanInto(const query::Conjunction& where,
                              const SelectOptions& options,
                              const ColumnSelection& required, RowSink* sink,
                              SelectMetrics* metrics = nullptr);

  /// DELETE: metadata-only for fully-covered partitions, file rewrite
  /// otherwise. Returns rows deleted.
  Result<uint64_t> Delete(const query::Conjunction& where);

  /// UPDATE ... SET column = value WHERE where. Returns rows updated.
  Result<uint64_t> Update(const query::Conjunction& where,
                          const std::string& column,
                          const format::Value& value);

  /// Live data files of a snapshot (0 = head). LakeBrain's state features
  /// come from here.
  Result<std::vector<DataFileMeta>> LiveFiles(uint64_t snapshot_id = 0);

  /// Binpack-merge the files of `partition` smaller than the target file
  /// size into ~target-size files. `base_snapshot_id` is the snapshot the
  /// caller planned on; ingestion into the partition after it causes a
  /// Conflict (the failure mode the RL agent learns to avoid).
  Result<CompactionResult> CompactPartition(const std::string& partition,
                                            uint64_t base_snapshot_id = 0);

  /// Drop snapshots (and commits only they reference) older than
  /// `before_timestamp`, bounding time travel.
  Status ExpireSnapshots(int64_t before_timestamp);

  /// Metadata compaction: squash the current snapshot's commit chain into
  /// one consolidated commit (what the MetaFresher's aggregation enables).
  /// Reading the head afterwards replays a single commit instead of the
  /// whole history; older snapshots keep their original chains for time
  /// travel. Returns the number of commits squashed.
  Result<size_t> RewriteManifest();

  Result<TableInfo> Info() const;

  /// How often each partition's files were scanned by SELECTs — the "data
  /// access frequency" partition feature of the LakeBrain state
  /// (Section VI-A).
  std::map<std::string, uint64_t> PartitionAccessCounts() const;

  /// Aggregate the extended footer stats (null_count / ndv / avg_width) of
  /// every live file at head, per schema column. Feeds LakeBrain's SPN
  /// priors with observed data characteristics instead of synthetic
  /// defaults. Columns of files written without stats contribute rows only.
  Result<std::vector<ColumnFooterStats>> AggregateFooterStats();

  const TableOptions& options() const { return options_; }

 private:
  struct CommitRequest {
    uint64_t base_snapshot_id = 0;
    std::vector<DataFileMeta> added;
    std::vector<DataFileMeta> removed;
    std::vector<query::Conjunction> delete_predicates;  // merge-on-read
    bool is_rewrite = false;
  };

  /// Apply a commit with optimistic validation; advances the snapshot.
  Status CommitChanges(const CommitRequest& request);

  /// Write one data file; returns its metadata.
  Result<DataFileMeta> WriteDataFile(const TableInfo& info,
                                     const std::string& partition,
                                     const std::vector<format::Row>& rows);

  /// Reconstruct the live file set (and, when `deletes` is non-null, the
  /// outstanding merge-on-read deletes) of a snapshot by replaying
  /// commits.
  Result<std::vector<DataFileMeta>> ReplaySnapshot(
      const TableInfo& info, uint64_t snapshot_id,
      uint64_t* commit_meta_bytes_sum, uint64_t* commit_meta_bytes_max,
      std::vector<DeleteRecord>* deletes = nullptr);

  /// Is `row` of a file added at `added_seq` masked by a later delete?
  static bool RowMasked(const std::vector<DeleteRecord>& deletes,
                        uint64_t added_seq, const format::Schema& schema,
                        const format::Row& row);

  /// Can a file possibly contain matching rows?
  bool FileMayMatch(const TableInfo& info, const DataFileMeta& file,
                    const query::Conjunction& where) const;

  /// Snapshot a Select/ScanInto with `options` reads: explicit id wins,
  /// then time travel, then head. 0 means the table has no snapshot yet.
  static Result<uint64_t> ResolveSnapshotId(const TableInfo& info,
                                            const SelectOptions& options);

  /// Does the partition value guarantee every row matches `where`?
  bool PartitionFullyCovered(const TableInfo& info,
                             const std::string& partition,
                             const query::Conjunction& where) const;

  Result<uint64_t> RewriteMatching(const query::Conjunction& where,
                                   bool keep_rewritten,
                                   const std::string& set_column,
                                   const format::Value* set_value);

  /// One Select scan job: open/decode/execute a single pruned-in file into
  /// the job's private `executor` + `m`. Runs on the scan pool (or inline
  /// when there is none); holds no table lock across the simulated device
  /// I/O except the brief access-counter bump.
  Status ScanOneFile(const TableInfo& info, const query::QuerySpec& spec,
                     const SelectOptions& options,
                     const std::vector<DeleteRecord>& delete_records,
                     const DataFileMeta& file, uint64_t metadata_memory,
                     const ColumnSelection& required,
                     query::Executor* executor, SelectMetrics* m);

  /// Shared body of ScanOneFile/ScanInto jobs — the late-materialization
  /// pipeline: open one file through the per-column block cache, skip row
  /// groups by stats against `where` (checking only predicate-referenced
  /// columns), evaluate each conjunct column-at-a-time into a selection
  /// vector (dictionary chunks compare codes without decoding values),
  /// compose the merge-on-read delete mask, decode only surviving
  /// `required` columns, and hand each group's matched rows to `consume`
  /// along with the group's visible (unmasked) row count.
  Status ScanFileRows(
      const TableInfo& info, const query::Conjunction& where,
      const SelectOptions& options,
      const std::vector<DeleteRecord>& delete_records,
      const DataFileMeta& file, uint64_t metadata_memory,
      const ColumnSelection& required,
      const std::function<Status(std::vector<format::Row>, uint64_t)>&
          consume,
      SelectMetrics* m);

  /// Every row of one data file, through the block cache when attached —
  /// the shared read helper of the delete-count / rewrite / compaction
  /// full-file scans.
  Result<std::vector<format::Row>> ReadDataFileRows(const DataFileMeta& file);

  const std::string name_;
  MetadataStore* meta_;
  storage::ObjectStore* objects_;
  sim::SimClock* clock_;
  sim::NetworkModel* compute_link_;
  TableOptions options_;
  ThreadPool* scan_pool_;           // may be nullptr: Select scans serially
  DecodedBlockCache* block_cache_;  // may be nullptr: reads are uncached
  // Serializes the optimistic-commit protocol (validate + publish); the
  // committed state itself lives in the metadata store.
  Mutex commit_mu_{LockRank::kTableCommit, "table.commit"};
  mutable Mutex access_mu_ ACQUIRED_AFTER(commit_mu_){
      LockRank::kTableAccess, "table.access"};
  std::map<std::string, uint64_t> partition_access_ GUARDED_BY(access_mu_);
};

}  // namespace streamlake::table

#endif  // STREAMLAKE_TABLE_TABLE_H_
