#ifndef STREAMLAKE_TABLE_BLOCK_CACHE_H_
#define STREAMLAKE_TABLE_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "format/lakefile.h"
#include "storage/object_store.h"

namespace streamlake::table {

/// \brief LRU cache of decoded lakefile blocks: the read-side analog of the
/// stream layer's ScmSliceCache.
///
/// Two kinds of entries, both keyed by data-file path (data files are
/// immutable and never reuse a path, so entries need no version tag):
///
///   - the FOOTER of a file (row-group directory + stats), so repeat
///     queries can prune row groups without re-reading the file, and
///   - one COLUMN CHUNK of one row group (key: path, group, column), so
///     repeat Selects and time-travel reads skip PLog I/O and decode
///     entirely, and a narrow query caches — and evicts — only the columns
///     it touches.
///
/// Cached chunks are the raw decoded content, BEFORE any merge-on-read
/// delete masking — masking depends on the query's snapshot, so it is
/// applied by the reader after the cache fetch. That keeps entries valid
/// for every snapshot that references the file, which is what makes
/// time-travel reads safe against the shared cache.
///
/// Invalidation: commits that remove files, compaction, snapshot
/// expiry GC, DropTableHard, and PLog tier migration call
/// InvalidateFile/InvalidateAll (see DESIGN.md "Parallel read path").
///
/// Thread-safe. The internal mutex is rank kTableBlockCache, below
/// kTableCommit, so invalidation while holding a table's commit lock is
/// legal; Get/Put never call out while holding it.
class DecodedBlockCache {
 public:
  /// Cached copy of a lakefile's row-group directory.
  struct Footer {
    std::vector<format::RowGroupMeta> groups;
    uint64_t file_bytes = 0;
  };

  using ColumnPtr = std::shared_ptr<const format::ColumnChunkData>;
  using FooterPtr = std::shared_ptr<const Footer>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidated_entries = 0;
    uint64_t bytes_cached = 0;
    uint64_t entries = 0;
  };

  explicit DecodedBlockCache(uint64_t capacity_bytes);

  /// nullptr on miss. Returned pointers stay valid after eviction.
  FooterPtr GetFooter(const std::string& path);
  ColumnPtr GetColumn(const std::string& path, size_t group, size_t column);

  void PutFooter(const std::string& path, FooterPtr footer);
  void PutColumn(const std::string& path, size_t group, size_t column,
                 ColumnPtr chunk);

  /// Drop every entry of one data file (footer + all column chunks).
  void InvalidateFile(const std::string& path);
  /// Drop everything (PLog migration moved data between tiers).
  void InvalidateAll();

  Stats GetStats() const;
  /// True if any entry of this file is cached (test hook).
  bool ContainsFile(const std::string& path) const;

  uint64_t capacity_bytes() const { return capacity_; }

 private:
  // Footers use group index SIZE_MAX (column 0); chunk entries use their
  // (group, column) position.
  using Key = std::tuple<std::string, size_t, size_t>;
  static constexpr size_t kFooterSlot = static_cast<size_t>(-1);

  struct Entry {
    Key key;
    ColumnPtr column;   // set for column-chunk entries
    FooterPtr footer;   // set for footer entries
    uint64_t bytes = 0;
  };

  void Insert(Key key, ColumnPtr column, FooterPtr footer, uint64_t bytes)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void EvictToCapacity() EXCLUSIVE_LOCKS_REQUIRED(mu_);

  const uint64_t capacity_;
  mutable Mutex mu_{LockRank::kTableBlockCache, "table.block_cache"};
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recent
  std::map<Key, std::list<Entry>::iterator> index_ GUARDED_BY(mu_);
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
};

/// Approximate heap footprint of decoded rows, for the cache byte budget.
uint64_t ApproxRowsBytes(const std::vector<format::Row>& rows);

/// Approximate heap footprint of one decoded column chunk.
uint64_t ApproxColumnBytes(const format::ColumnChunkData& chunk);

/// \brief Cache-aware reader over one immutable data file.
///
/// The single helper behind Table's Select scan jobs and its
/// delete-count / rewrite / compaction full-file scans: serves footers and
/// decoded column chunks from the DecodedBlockCache when one is attached
/// (cache == nullptr degrades to a plain read-and-decode), reading the
/// file from the object store only on miss and back-filling the cache.
///
/// Not thread-safe; make one per file per scan job.
class CachedFileReader {
 public:
  CachedFileReader(storage::ObjectStore* objects, DecodedBlockCache* cache,
                   std::string path);

  /// Resolve the footer (from cache or by reading the file). Must be
  /// called, and return OK, before any other accessor.
  Status Init();

  size_t num_row_groups() const { return footer_->groups.size(); }
  const format::RowGroupMeta& row_group(size_t g) const {
    return footer_->groups[g];
  }
  uint64_t file_bytes() const { return footer_->file_bytes; }

  /// One decoded column chunk, before delete masking.
  Result<DecodedBlockCache::ColumnPtr> ReadColumnChunk(size_t group,
                                                       size_t column);

  /// Decoded rows of one row group (all columns), before delete masking.
  Result<std::vector<format::Row>> ReadGroupRows(size_t group);

  /// All rows of the file, concatenated in row-group order.
  Result<std::vector<format::Row>> ReadAllRows();

  /// Bytes actually read from the object store (0 on a full cache hit).
  uint64_t storage_bytes_read() const { return storage_bytes_read_; }

  /// Decode work actually performed by this reader (cache hits are free):
  /// uncompressed payload bytes and number of chunks decoded.
  uint64_t bytes_decoded() const { return bytes_decoded_; }
  uint64_t chunks_decoded() const { return chunks_decoded_; }

 private:
  /// Read + parse the file if this reader has not done so yet.
  Status EnsureFileLoaded();

  storage::ObjectStore* objects_;
  DecodedBlockCache* cache_;  // may be nullptr
  std::string path_;
  DecodedBlockCache::FooterPtr footer_;
  std::optional<format::LakeFileReader> reader_;
  uint64_t storage_bytes_read_ = 0;
  uint64_t bytes_decoded_ = 0;
  uint64_t chunks_decoded_ = 0;
};

}  // namespace streamlake::table

#endif  // STREAMLAKE_TABLE_BLOCK_CACHE_H_
