#ifndef STREAMLAKE_TABLE_METADATA_H_
#define STREAMLAKE_TABLE_METADATA_H_

#include <map>
#include <string>
#include <vector>

#include "format/lakefile.h"
#include "format/schema.h"
#include "query/predicate.h"

namespace streamlake::table {

/// How a table's rows map to partition directories (the sub-directories of
/// Fig. 5 whose names carry the partition range).
struct PartitionSpec {
  enum class Transform {
    kNone,      // unpartitioned
    kIdentity,  // partition by the column value (e.g. location)
    kDay,       // partition by day(timestamp_seconds)
    kMonth,     // partition by 30-day bucket (scaled-down "day")
  };

  Transform transform = Transform::kNone;
  std::string column;

  static PartitionSpec None() { return PartitionSpec{}; }
  static PartitionSpec Identity(std::string column) {
    return PartitionSpec{Transform::kIdentity, std::move(column)};
  }
  static PartitionSpec Day(std::string column) {
    return PartitionSpec{Transform::kDay, std::move(column)};
  }
  static PartitionSpec Month(std::string column) {
    return PartitionSpec{Transform::kMonth, std::move(column)};
  }

  bool partitioned() const { return transform != Transform::kNone; }

  /// Partition value of one row, e.g. "guangdong" or "day=19175".
  Result<std::string> PartitionOf(const format::Schema& schema,
                                  const format::Row& row) const;

  void EncodeTo(Bytes* dst) const;
  static Result<PartitionSpec> DecodeFrom(Decoder* dec);
};

/// File-level metadata carried by commits: "file paths, record counts, and
/// value ranges for the data objects".
struct DataFileMeta {
  std::string path;
  std::string partition;
  uint64_t record_count = 0;
  uint64_t file_bytes = 0;
  /// Commit sequence that first added this file (merge-on-read: delete
  /// predicates only mask rows of files added before them).
  uint64_t added_seq = 0;
  /// Per-column min/max for file-level data skipping.
  std::map<std::string, format::ColumnStats> column_stats;

  void EncodeTo(Bytes* dst) const;
  static Result<DataFileMeta> DecodeFrom(Decoder* dec);
};

/// A merge-on-read delete: rows of earlier files matching `predicate` are
/// masked at read time until compaction applies the delete physically
/// (the "merge-on-read tables" of Section VI-A).
struct DeleteRecord {
  uint64_t seq = 0;  // the delete's commit sequence
  query::Conjunction predicate;

  void EncodeTo(Bytes* dst) const;
  static Result<DeleteRecord> DecodeFrom(Decoder* dec);
};

/// One commit: the delta produced by one insert/update/delete/compaction.
struct CommitFile {
  uint64_t commit_seq = 0;
  int64_t timestamp = 0;  // sim seconds
  std::vector<DataFileMeta> added;
  std::vector<DataFileMeta> removed;
  std::vector<DeleteRecord> deletes;  // merge-on-read delete predicates

  /// Partitions this commit touches (rewrite conflict detection).
  std::vector<std::string> TouchedPartitions() const;

  void EncodeTo(Bytes* dst) const;
  static Result<CommitFile> DecodeFrom(ByteView data);

  size_t ByteSize() const;
};

/// A snapshot: "index files that index valid commit files for a specified
/// time period", carrying operation-log statistics.
struct SnapshotMeta {
  uint64_t snapshot_id = 0;
  int64_t timestamp = 0;
  std::vector<uint64_t> commit_seqs;  // commits composing this snapshot
  // Operation log ("current files, row count and added/removed
  // files/rows").
  uint64_t total_files = 0;
  uint64_t total_rows = 0;
  uint64_t added_files = 0;
  uint64_t removed_files = 0;
  uint64_t added_rows = 0;
  uint64_t removed_rows = 0;

  void EncodeTo(Bytes* dst) const;
  static Result<SnapshotMeta> DecodeFrom(ByteView data);
};

/// The catalog entry of one table (stored in the distributed KV engine):
/// "table ID, directory paths, schema, snapshot descriptions, modification
/// timestamps".
struct TableInfo {
  uint64_t table_id = 0;
  std::string name;
  std::string path;  // root directory: <path>/data, <path>/metadata
  format::Schema schema;
  PartitionSpec partition_spec;
  uint64_t current_snapshot_id = 0;  // 0 = empty table
  uint64_t next_commit_seq = 1;
  uint64_t next_snapshot_id = 1;
  uint64_t next_file_id = 1;
  int64_t created_at = 0;
  int64_t modified_at = 0;
  bool soft_deleted = false;
  /// Snapshot descriptions (id -> timestamp), the version history.
  std::vector<std::pair<uint64_t, int64_t>> snapshot_log;

  void EncodeTo(Bytes* dst) const;
  static Result<TableInfo> DecodeFrom(ByteView data);
};

}  // namespace streamlake::table

#endif  // STREAMLAKE_TABLE_METADATA_H_
