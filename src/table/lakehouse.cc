#include "table/lakehouse.h"

#include "query/plan.h"
#include "table/block_cache.h"
#include "table/plan_runner.h"

namespace streamlake::table {

LakehouseService::LakehouseService(MetadataStore* meta,
                                   storage::ObjectStore* objects,
                                   sim::SimClock* clock,
                                   sim::NetworkModel* compute_link,
                                   TableOptions default_options,
                                   ThreadPool* scan_pool,
                                   DecodedBlockCache* block_cache)
    : meta_(meta),
      objects_(objects),
      clock_(clock),
      compute_link_(compute_link),
      default_options_(default_options),
      scan_pool_(scan_pool),
      block_cache_(block_cache) {}

Result<Table*> LakehouseService::CreateTable(const std::string& name,
                                             const format::Schema& schema,
                                             const PartitionSpec& partition_spec,
                                             const TableOptions* options) {
  MutexLock lock(&mu_);
  auto existing = meta_->GetTableInfo(name);
  if (existing.ok() && !existing->soft_deleted) {
    return Status::AlreadyExists("table " + name);
  }
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("schema must have columns");
  }
  if (partition_spec.partitioned() &&
      schema.FieldIndex(partition_spec.column) < 0) {
    return Status::InvalidArgument("partition column not in schema");
  }

  TableInfo info;
  info.table_id = next_table_id_++;
  info.name = name;
  info.path = "/tables/" + name;
  info.schema = schema;
  info.partition_spec = partition_spec;
  info.created_at = static_cast<int64_t>(clock_->NowSeconds());
  info.modified_at = info.created_at;
  SL_RETURN_NOT_OK(meta_->PutTableInfo(info));
  // Materialize the /data and /metadata directories (directory markers in
  // the object namespace). If either marker fails, retract the catalog
  // entry so no table exists whose directories were never created.
  Status dirs = objects_->Write(info.path + "/data/.dir", ByteView());
  if (dirs.ok()) {
    dirs = objects_->Write(info.path + "/metadata/.dir", ByteView());
  }
  if (!dirs.ok()) {
    meta_->DeleteTableInfo(name).LogIgnored("create-table rollback");
    return dirs;
  }

  auto table = std::make_unique<Table>(
      name, meta_, objects_, clock_, compute_link_,
      options != nullptr ? *options : default_options_, scan_pool_,
      block_cache_);
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Result<Table*> LakehouseService::GetTable(const std::string& name) {
  MutexLock lock(&mu_);
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name));
  if (info.soft_deleted) return Status::NotFound("table " + name + " dropped");
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    auto table = std::make_unique<Table>(name, meta_, objects_, clock_,
                                         compute_link_, default_options_,
                                         scan_pool_, block_cache_);
    it = tables_.emplace(name, std::move(table)).first;
  }
  return it->second.get();
}

Status LakehouseService::DropTableSoft(const std::string& name) {
  MutexLock lock(&mu_);
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name));
  if (info.soft_deleted) return Status::NotFound("table already dropped");
  info.soft_deleted = true;
  info.modified_at = static_cast<int64_t>(clock_->NowSeconds());
  SL_RETURN_NOT_OK(meta_->PutTableInfo(info));
  tables_.erase(name);
  return Status::OK();
}

Status LakehouseService::DropTableHard(const std::string& name) {
  MutexLock lock(&mu_);
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name));
  // Remove metadata entries (cache first, then disk — handled by the
  // metadata store) for every snapshot/commit.
  for (const auto& [snapshot_id, ts] : info.snapshot_log) {
    SL_RETURN_NOT_OK(meta_->DeleteSnapshot(info.path, snapshot_id));
  }
  for (uint64_t seq = 1; seq < info.next_commit_seq; ++seq) {
    SL_RETURN_NOT_OK(meta_->DeleteCommit(info.path, seq));
  }
  // Remove all data and metadata objects under the table path.
  for (const std::string& path : objects_->List(info.path + "/")) {
    SL_RETURN_NOT_OK(objects_->Delete(path));
    // Data files are gone for good; their decoded blocks go with them.
    if (block_cache_ != nullptr) block_cache_->InvalidateFile(path);
  }
  SL_RETURN_NOT_OK(meta_->DeleteTableInfo(name));
  tables_.erase(name);
  return Status::OK();
}

Result<query::QueryResult> LakehouseService::Query(
    const query::SqlStatement& statement, const SelectOptions& options,
    SelectMetrics* metrics) {
  if (statement.kind != query::SqlStatement::Kind::kSelect) {
    return Status::InvalidArgument("Query executes SELECT statements only");
  }
  SL_ASSIGN_OR_RETURN(Table* from, GetTable(statement.table));
  const std::string& from_alias = statement.table_alias.empty()
                                      ? statement.table
                                      : statement.table_alias;

  if (statement.joins.empty()) {
    // Single-table: the plan collapses back into Table::Select, which
    // resolves its own snapshot and captures its own metrics — exactly
    // the pre-plan-tree behavior.
    SL_ASSIGN_OR_RETURN(TableInfo info, from->Info());
    std::vector<query::PlanTableRef> refs{
        {statement.table, from_alias, &info.schema}};
    SL_ASSIGN_OR_RETURN(std::unique_ptr<query::PlanNode> root,
                        query::PlanSelect(statement, refs));
    PlanRunner runner({{from, 0}}, options);
    return runner.Run(*root, metrics);
  }

  if (options.snapshot_id != 0) {
    return Status::InvalidArgument(
        "snapshot_id cannot be combined with joins: snapshot ids are "
        "per-table");
  }
  SelectMetrics local_metrics;
  SelectMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = SelectMetrics();
  uint64_t start_ns = clock_->NowNanos();
  MetadataCounters metadata_start = MetadataCounters::Capture();

  std::vector<Table*> tables{from};
  for (const query::JoinSpec& join : statement.joins) {
    SL_ASSIGN_OR_RETURN(Table* joined, GetTable(join.table));
    tables.push_back(joined);
  }
  // Pin one snapshot per table in a single tight pass BEFORE any scan
  // starts: a commit landing after this point affects none of the scans,
  // so the join never observes a torn cross-table state. Per-table
  // as_of_timestamp resolution = one consistent point in time.
  std::vector<PlanRunner::PinnedTable> pinned;
  std::vector<TableInfo> infos;
  pinned.reserve(tables.size());
  infos.reserve(tables.size());  // refs hold schema pointers: no realloc
  for (Table* t : tables) {
    SL_ASSIGN_OR_RETURN(uint64_t snapshot_id, t->ResolveSnapshot(options));
    pinned.push_back({t, snapshot_id});
    SL_ASSIGN_OR_RETURN(TableInfo info, t->Info());
    infos.push_back(std::move(info));
  }

  std::vector<query::PlanTableRef> refs;
  refs.push_back({statement.table, from_alias, &infos[0].schema});
  for (size_t j = 0; j < statement.joins.size(); ++j) {
    const query::JoinSpec& join = statement.joins[j];
    refs.push_back({join.table,
                    join.alias.empty() ? join.table : join.alias,
                    &infos[j + 1].schema});
  }

  SL_ASSIGN_OR_RETURN(std::unique_ptr<query::PlanNode> root,
                      query::PlanSelect(statement, refs));
  PlanRunner runner(std::move(pinned), options);
  SL_ASSIGN_OR_RETURN(query::QueryResult result, runner.Run(*root, m));
  m->metadata = MetadataCounters::Capture() - metadata_start;
  m->elapsed_ns = clock_->NowNanos() - start_ns;
  return result;
}

Result<Table*> LakehouseService::RestoreTable(const std::string& name) {
  MutexLock lock(&mu_);
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name));
  if (!info.soft_deleted) {
    return Status::InvalidArgument("table " + name + " is not dropped");
  }
  info.soft_deleted = false;
  info.modified_at = static_cast<int64_t>(clock_->NowSeconds());
  SL_RETURN_NOT_OK(meta_->PutTableInfo(info));
  auto table = std::make_unique<Table>(name, meta_, objects_, clock_,
                                       compute_link_, default_options_,
                                       scan_pool_, block_cache_);
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

}  // namespace streamlake::table
