#ifndef STREAMLAKE_TABLE_PLAN_RUNNER_H_
#define STREAMLAKE_TABLE_PLAN_RUNNER_H_

#include <vector>

#include "query/plan.h"
#include "table/table.h"

namespace streamlake::table {

/// \brief Executes a query plan tree against pinned table snapshots.
///
/// A single-scan plan collapses back into Table::Select (the scan-fragment
/// + aggregate operators there ARE the plan's operators), so single-table
/// SQL keeps its pre-plan-tree behavior byte-for-byte. Join plans run the
/// hash-join pipeline: every build side is scanned through the shared scan
/// pool into an ordered fragment sink, its key map is built serially in
/// fragment order (deterministic float accumulation downstream), then the
/// probe scan streams fragments through the join chain concurrently —
/// probe matching happens on the pool threads — and the final aggregate /
/// sort runs once over fragments merged in file order, mirroring the
/// parallel-Select merge discipline.
class PlanRunner {
 public:
  struct PinnedTable {
    Table* table = nullptr;
    /// Snapshot resolved before any scan started; 0 = let the scan
    /// resolve (single-table path keeps Select's own resolution).
    uint64_t snapshot_id = 0;
  };

  PlanRunner(std::vector<PinnedTable> tables, SelectOptions options);

  /// Walk the plan and produce its result. `metrics` accumulates scan
  /// metrics across all tables (not reset here; the caller owns per-query
  /// capture of metadata counters and elapsed time for join plans).
  Result<query::QueryResult> Run(const query::PlanNode& root,
                                 SelectMetrics* metrics = nullptr);

 private:
  /// Per-table scan options: the query-wide options with the pinned
  /// snapshot substituted.
  SelectOptions OptionsFor(size_t table_index) const;

  std::vector<PinnedTable> tables_;
  SelectOptions options_;
};

}  // namespace streamlake::table

#endif  // STREAMLAKE_TABLE_PLAN_RUNNER_H_
