#include "table/metadata_store.h"

#include "common/metrics.h"

namespace streamlake::table {

// Registry handles for the metadata hot path (names: DESIGN.md,
// "Observability"). Function-scope statics would also work, but the
// read path has several call sites sharing these.
namespace {

struct MetadataMetrics {
  Counter* reads;
  Counter* bytes_read;
  Counter* small_ios;
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* writes;
  Counter* flush_batches;
  Counter* flush_entries;
  Gauge* pending_flushes;

  static const MetadataMetrics& Get() {
    static const MetadataMetrics m = [] {
      auto& r = MetricsRegistry::Global();
      return MetadataMetrics{
          r.GetCounter("table.metadata.reads"),
          r.GetCounter("table.metadata.bytes_read"),
          r.GetCounter("table.metadata.small_ios"),
          r.GetCounter("table.metadata.cache_hits"),
          r.GetCounter("table.metadata.cache_misses"),
          r.GetCounter("table.metadata.writes"),
          r.GetCounter("table.metadata.flush_batches"),
          r.GetCounter("table.metadata.flush_entries"),
          r.GetGauge("table.metadata.pending_flushes"),
      };
    }();
    return m;
  }
};

}  // namespace

MetadataCounters MetadataCounters::Capture() {
  auto& registry = MetricsRegistry::Global();
  MetadataCounters sample;
  sample.reads = registry.CounterValue("table.metadata.reads");
  sample.bytes_read = registry.CounterValue("table.metadata.bytes_read");
  sample.small_ios = registry.CounterValue("table.metadata.small_ios");
  return sample;
}

MetadataCounters MetadataCounters::operator-(
    const MetadataCounters& start) const {
  MetadataCounters delta;
  delta.reads = reads - start.reads;
  delta.bytes_read = bytes_read - start.bytes_read;
  delta.small_ios = small_ios - start.small_ios;
  return delta;
}

std::string MetadataStore::CatalogKey(const std::string& name) {
  return "catalog/" + name;
}
std::string MetadataStore::CommitKey(const std::string& path, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(seq));
  return "meta/" + path + "/commit/" + buf;
}
std::string MetadataStore::SnapshotKey(const std::string& path, uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(id));
  return "meta/" + path + "/snapshot/" + buf;
}
std::string MetadataStore::CommitFilePath(const std::string& path,
                                          uint64_t seq) {
  return path + "/metadata/commit-" + std::to_string(seq);
}
std::string MetadataStore::SnapshotFilePath(const std::string& path,
                                            uint64_t id) {
  return path + "/metadata/snapshot-" + std::to_string(id);
}
std::string MetadataStore::CatalogFilePath(const std::string& name) {
  return "/catalog/" + name;
}

Status MetadataStore::WriteEntry(const std::string& cache_key,
                                 const std::string& file_path, ByteView data) {
  const auto& metrics = MetadataMetrics::Get();
  metrics.writes->Increment();
  if (mode_ == MetadataMode::kFileBased) {
    // Every metadata update is a small object-store write.
    return objects_->Write(file_path, data);
  }
  // Accelerated: write to the KV cache; the file write is deferred to the
  // MetaFresher (FlushPending).
  SL_RETURN_NOT_OK(cache_->Put(cache_key, ByteView(data).ToStringView()));
  metrics.pending_flushes->Add(1);
  MutexLock lock(&mu_);
  pending_.emplace_back(cache_key, file_path);
  return Status::OK();
}

Result<Bytes> MetadataStore::ReadEntry(const std::string& cache_key,
                                       const std::string& file_path) {
  const auto& metrics = MetadataMetrics::Get();
  if (mode_ == MetadataMode::kAccelerated) {
    auto cached = cache_->Get(cache_key);
    if (cached.ok()) {
      metrics.cache_hits->Increment();
      metrics.reads->Increment();
      metrics.bytes_read->Increment(cached->size());
      return ToBytes(*cached);
    }
    metrics.cache_misses->Increment();
    // Fall through to the persistent layer (entry evicted or pre-dating
    // the cache).
  }
  auto data = objects_->Read(file_path);
  if (data.ok()) {
    metrics.reads->Increment();
    metrics.small_ios->Increment();
    metrics.bytes_read->Increment(data->size());
  }
  return data;
}

Status MetadataStore::DeleteEntry(const std::string& cache_key,
                                  const std::string& file_path) {
  if (mode_ == MetadataMode::kAccelerated) {
    // Drop Table Hard ordering: "the operation to delete the metadata will
    // first clear it from the cache, and then delete it from the disk."
    // A failed cache drop must abort the disk delete, or a reader could
    // resurrect the entry from the stale cache.
    SL_RETURN_NOT_OK(cache_->Delete(cache_key));
    MutexLock lock(&mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->first == cache_key) {
        it = pending_.erase(it);
        MetadataMetrics::Get().pending_flushes->Add(-1);
      } else {
        ++it;
      }
    }
  }
  if (objects_->Exists(file_path)) {
    return objects_->Delete(file_path);
  }
  return Status::OK();
}

Status MetadataStore::PutTableInfo(const TableInfo& info) {
  Bytes encoded;
  info.EncodeTo(&encoded);
  return WriteEntry(CatalogKey(info.name), CatalogFilePath(info.name),
                    ByteView(encoded));
}

Result<TableInfo> MetadataStore::GetTableInfo(const std::string& name) {
  SL_ASSIGN_OR_RETURN(Bytes data,
                      ReadEntry(CatalogKey(name), CatalogFilePath(name)));
  return TableInfo::DecodeFrom(ByteView(data));
}

Status MetadataStore::DeleteTableInfo(const std::string& name) {
  return DeleteEntry(CatalogKey(name), CatalogFilePath(name));
}

std::vector<std::string> MetadataStore::ListTables() const {
  std::vector<std::string> names;
  if (mode_ == MetadataMode::kAccelerated) {
    for (const auto& [key, value] : cache_->Scan("catalog/", "catalog0")) {
      names.push_back(key.substr(8));
    }
  } else {
    for (const std::string& path : objects_->List("/catalog/")) {
      names.push_back(path.substr(9));
    }
  }
  return names;
}

Status MetadataStore::PutCommit(const std::string& table_path,
                                const CommitFile& commit) {
  Bytes encoded;
  commit.EncodeTo(&encoded);
  return WriteEntry(CommitKey(table_path, commit.commit_seq),
                    CommitFilePath(table_path, commit.commit_seq),
                    ByteView(encoded));
}

Result<CommitFile> MetadataStore::GetCommit(const std::string& table_path,
                                            uint64_t seq) {
  SL_ASSIGN_OR_RETURN(Bytes data, ReadEntry(CommitKey(table_path, seq),
                                            CommitFilePath(table_path, seq)));
  return CommitFile::DecodeFrom(ByteView(data));
}

Status MetadataStore::DeleteCommit(const std::string& table_path,
                                   uint64_t seq) {
  return DeleteEntry(CommitKey(table_path, seq),
                     CommitFilePath(table_path, seq));
}

Status MetadataStore::PutSnapshot(const std::string& table_path,
                                  const SnapshotMeta& snap) {
  Bytes encoded;
  snap.EncodeTo(&encoded);
  return WriteEntry(SnapshotKey(table_path, snap.snapshot_id),
                    SnapshotFilePath(table_path, snap.snapshot_id),
                    ByteView(encoded));
}

Result<SnapshotMeta> MetadataStore::GetSnapshot(const std::string& table_path,
                                                uint64_t id) {
  SL_ASSIGN_OR_RETURN(Bytes data, ReadEntry(SnapshotKey(table_path, id),
                                            SnapshotFilePath(table_path, id)));
  return SnapshotMeta::DecodeFrom(ByteView(data));
}

Status MetadataStore::DeleteSnapshot(const std::string& table_path,
                                     uint64_t id) {
  return DeleteEntry(SnapshotKey(table_path, id),
                     SnapshotFilePath(table_path, id));
}

Result<size_t> MetadataStore::FlushPending() {
  std::deque<std::pair<std::string, std::string>> to_flush;
  {
    MutexLock lock(&mu_);
    to_flush.swap(pending_);
  }
  const auto& metrics = MetadataMetrics::Get();
  metrics.pending_flushes->Add(-static_cast<int64_t>(to_flush.size()));
  if (!to_flush.empty()) metrics.flush_batches->Increment();
  size_t flushed = 0;
  for (size_t i = 0; i < to_flush.size(); ++i) {
    const auto& [cache_key, file_path] = to_flush[i];
    auto value = cache_->Get(cache_key);
    if (!value.ok()) continue;  // deleted before the flush caught up
    Status write = objects_->Write(file_path, ByteView(*value));
    if (!write.ok()) {
      // Undo the dequeue for everything not yet flushed (including the
      // failing entry): re-queue at the front so the next pass retries
      // in arrival order instead of silently dropping durability.
      {
        MutexLock lock(&mu_);
        pending_.insert(pending_.begin(), to_flush.begin() + i,
                        to_flush.end());
      }
      metrics.pending_flushes->Add(
          static_cast<int64_t>(to_flush.size() - i));
      metrics.flush_entries->Increment(flushed);
      return write;
    }
    ++flushed;
  }
  metrics.flush_entries->Increment(flushed);
  return flushed;
}

size_t MetadataStore::pending_flushes() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

}  // namespace streamlake::table
