#include "table/block_cache.h"

#include "common/metrics.h"
#include "common/result.h"

namespace streamlake::table {

using ColumnPtr = DecodedBlockCache::ColumnPtr;

namespace {

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* invalidations;
  Gauge* bytes;

  static CacheMetrics& Get() {
    static CacheMetrics m{
        MetricsRegistry::Global().GetCounter("table.block_cache.hits"),
        MetricsRegistry::Global().GetCounter("table.block_cache.misses"),
        MetricsRegistry::Global().GetCounter("table.block_cache.evictions"),
        MetricsRegistry::Global().GetCounter("table.block_cache.invalidations"),
        MetricsRegistry::Global().GetGauge("table.block_cache.bytes")};
    return m;
  }
};

uint64_t ApproxValueBytes(const format::Value& v) {
  // variant header + payload; strings add their heap allocation.
  uint64_t bytes = sizeof(format::Value);
  if (const auto* s = std::get_if<std::string>(&v)) bytes += s->capacity();
  return bytes;
}

}  // namespace

uint64_t ApproxRowsBytes(const std::vector<format::Row>& rows) {
  uint64_t bytes = sizeof(rows[0]) * rows.capacity();
  for (const format::Row& row : rows) {
    for (const format::Value& v : row.fields) bytes += ApproxValueBytes(v);
  }
  return bytes;
}

uint64_t ApproxColumnBytes(const format::ColumnChunkData& chunk) {
  uint64_t bytes = sizeof(format::ColumnChunkData);
  auto data_bytes = [](const format::ColumnData& data) {
    return std::visit(
        [](const auto& vec) {
          uint64_t b = vec.capacity() * sizeof(vec[0]);
          if constexpr (std::is_same_v<
                            std::decay_t<decltype(vec)>,
                            std::vector<std::string>>) {
            for (const std::string& s : vec) b += s.capacity();
          }
          return b;
        },
        data);
  };
  bytes += data_bytes(chunk.values);
  bytes += data_bytes(chunk.dict);
  bytes += chunk.codes.capacity() * sizeof(uint32_t);
  bytes += chunk.null_mask.capacity();
  return bytes;
}

DecodedBlockCache::DecodedBlockCache(uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

DecodedBlockCache::FooterPtr DecodedBlockCache::GetFooter(
    const std::string& path) {
  MutexLock lock(&mu_);
  auto it = index_.find(Key(path, kFooterSlot, 0));
  if (it == index_.end()) {
    ++stats_.misses;
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  CacheMetrics::Get().hits->Increment();
  return it->second->footer;
}

DecodedBlockCache::ColumnPtr DecodedBlockCache::GetColumn(
    const std::string& path, size_t group, size_t column) {
  MutexLock lock(&mu_);
  auto it = index_.find(Key(path, group, column));
  if (it == index_.end()) {
    ++stats_.misses;
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  CacheMetrics::Get().hits->Increment();
  return it->second->column;
}

void DecodedBlockCache::PutFooter(const std::string& path, FooterPtr footer) {
  uint64_t bytes = sizeof(Entry) +
                   footer->groups.size() * sizeof(format::RowGroupMeta) * 2;
  MutexLock lock(&mu_);
  Insert(Key(path, kFooterSlot, 0), nullptr, std::move(footer), bytes);
}

void DecodedBlockCache::PutColumn(const std::string& path, size_t group,
                                  size_t column, ColumnPtr chunk) {
  uint64_t bytes = sizeof(Entry) + ApproxColumnBytes(*chunk);
  MutexLock lock(&mu_);
  Insert(Key(path, group, column), std::move(chunk), nullptr, bytes);
}

void DecodedBlockCache::Insert(Key key, ColumnPtr column, FooterPtr footer,
                               uint64_t bytes) {
  if (index_.count(key) > 0) return;  // entries are immutable; first wins
  lru_.push_front(Entry{key, std::move(column), std::move(footer), bytes});
  index_[std::move(key)] = lru_.begin();
  bytes_ += bytes;
  EvictToCapacity();
  CacheMetrics::Get().bytes->Set(static_cast<int64_t>(bytes_));
}

void DecodedBlockCache::EvictToCapacity() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    CacheMetrics::Get().evictions->Increment();
  }
}

void DecodedBlockCache::InvalidateFile(const std::string& path) {
  MutexLock lock(&mu_);
  // All keys of one file are contiguous in the map:
  // [(path, 0, 0), (path, MAX, MAX)].
  auto it = index_.lower_bound(Key(path, 0, 0));
  uint64_t dropped = 0;
  while (it != index_.end() && std::get<0>(it->first) == path) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    it = index_.erase(it);
    ++dropped;
  }
  if (dropped > 0) {
    stats_.invalidated_entries += dropped;
    CacheMetrics::Get().invalidations->Increment(dropped);
    CacheMetrics::Get().bytes->Set(static_cast<int64_t>(bytes_));
  }
}

void DecodedBlockCache::InvalidateAll() {
  MutexLock lock(&mu_);
  uint64_t dropped = lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  if (dropped > 0) {
    stats_.invalidated_entries += dropped;
    CacheMetrics::Get().invalidations->Increment(dropped);
    CacheMetrics::Get().bytes->Set(0);
  }
}

DecodedBlockCache::Stats DecodedBlockCache::GetStats() const {
  MutexLock lock(&mu_);
  Stats out = stats_;
  out.bytes_cached = bytes_;
  out.entries = lru_.size();
  return out;
}

bool DecodedBlockCache::ContainsFile(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = index_.lower_bound(Key(path, 0, 0));
  return it != index_.end() && std::get<0>(it->first) == path;
}

CachedFileReader::CachedFileReader(storage::ObjectStore* objects,
                                   DecodedBlockCache* cache, std::string path)
    : objects_(objects), cache_(cache), path_(std::move(path)) {}

Status CachedFileReader::Init() {
  if (cache_ != nullptr) {
    footer_ = cache_->GetFooter(path_);
    if (footer_ != nullptr) return Status::OK();
  }
  SL_RETURN_NOT_OK(EnsureFileLoaded());
  auto footer = std::make_shared<DecodedBlockCache::Footer>();
  footer->groups.reserve(reader_->num_row_groups());
  for (size_t g = 0; g < reader_->num_row_groups(); ++g) {
    footer->groups.push_back(reader_->row_group(g));
  }
  footer->file_bytes = reader_->file_size();
  footer_ = footer;
  if (cache_ != nullptr) cache_->PutFooter(path_, footer_);
  return Status::OK();
}

Result<DecodedBlockCache::ColumnPtr> CachedFileReader::ReadColumnChunk(
    size_t group, size_t column) {
  if (cache_ != nullptr) {
    if (ColumnPtr cached = cache_->GetColumn(path_, group, column)) {
      return cached;
    }
  }
  SL_RETURN_NOT_OK(EnsureFileLoaded());
  SL_ASSIGN_OR_RETURN(format::ColumnChunkData chunk,
                      reader_->ReadColumnChunk(group, column));
  bytes_decoded_ += chunk.raw_bytes;
  ++chunks_decoded_;
  auto shared = std::make_shared<const format::ColumnChunkData>(
      std::move(chunk));
  if (cache_ != nullptr) cache_->PutColumn(path_, group, column, shared);
  return shared;
}

Result<std::vector<format::Row>> CachedFileReader::ReadGroupRows(
    size_t group) {
  const format::RowGroupMeta& meta = footer_->groups[group];
  std::vector<format::Row> rows(meta.num_rows);
  for (format::Row& r : rows) r.fields.resize(meta.columns.size());
  for (size_t col = 0; col < meta.columns.size(); ++col) {
    SL_ASSIGN_OR_RETURN(ColumnPtr chunk, ReadColumnChunk(group, col));
    for (size_t i = 0; i < meta.num_rows; ++i) {
      rows[i].fields[col] = chunk->ValueAt(i);
    }
  }
  return rows;
}

Result<std::vector<format::Row>> CachedFileReader::ReadAllRows() {
  std::vector<format::Row> all;
  for (size_t g = 0; g < num_row_groups(); ++g) {
    SL_ASSIGN_OR_RETURN(std::vector<format::Row> rows, ReadGroupRows(g));
    for (format::Row& r : rows) all.push_back(std::move(r));
  }
  return all;
}

Status CachedFileReader::EnsureFileLoaded() {
  if (reader_.has_value()) return Status::OK();
  SL_ASSIGN_OR_RETURN(Bytes data, objects_->Read(path_));
  storage_bytes_read_ += data.size();
  SL_ASSIGN_OR_RETURN(format::LakeFileReader reader,
                      format::LakeFileReader::Open(std::move(data)));
  reader_.emplace(std::move(reader));
  return Status::OK();
}

}  // namespace streamlake::table
