#include "table/block_cache.h"

#include "common/metrics.h"
#include "common/result.h"

namespace streamlake::table {

using RowsPtr = DecodedBlockCache::RowsPtr;

namespace {

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* invalidations;
  Gauge* bytes;

  static CacheMetrics& Get() {
    static CacheMetrics m{
        MetricsRegistry::Global().GetCounter("table.block_cache.hits"),
        MetricsRegistry::Global().GetCounter("table.block_cache.misses"),
        MetricsRegistry::Global().GetCounter("table.block_cache.evictions"),
        MetricsRegistry::Global().GetCounter("table.block_cache.invalidations"),
        MetricsRegistry::Global().GetGauge("table.block_cache.bytes")};
    return m;
  }
};

uint64_t ApproxValueBytes(const format::Value& v) {
  // variant header + payload; strings add their heap allocation.
  uint64_t bytes = sizeof(format::Value);
  if (const auto* s = std::get_if<std::string>(&v)) bytes += s->capacity();
  return bytes;
}

}  // namespace

uint64_t ApproxRowsBytes(const std::vector<format::Row>& rows) {
  uint64_t bytes = sizeof(rows[0]) * rows.capacity();
  for (const format::Row& row : rows) {
    for (const format::Value& v : row.fields) bytes += ApproxValueBytes(v);
  }
  return bytes;
}

DecodedBlockCache::DecodedBlockCache(uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

DecodedBlockCache::FooterPtr DecodedBlockCache::GetFooter(
    const std::string& path) {
  MutexLock lock(&mu_);
  auto it = index_.find(Key(path, kFooterSlot));
  if (it == index_.end()) {
    ++stats_.misses;
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  CacheMetrics::Get().hits->Increment();
  return it->second->footer;
}

DecodedBlockCache::RowsPtr DecodedBlockCache::GetGroup(const std::string& path,
                                                       size_t group) {
  MutexLock lock(&mu_);
  auto it = index_.find(Key(path, group));
  if (it == index_.end()) {
    ++stats_.misses;
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  CacheMetrics::Get().hits->Increment();
  return it->second->rows;
}

void DecodedBlockCache::PutFooter(const std::string& path, FooterPtr footer) {
  uint64_t bytes = sizeof(Entry) +
                   footer->groups.size() * sizeof(format::RowGroupMeta) * 2;
  MutexLock lock(&mu_);
  Insert(Key(path, kFooterSlot), nullptr, std::move(footer), bytes);
}

void DecodedBlockCache::PutGroup(const std::string& path, size_t group,
                                 RowsPtr rows) {
  uint64_t bytes = sizeof(Entry) + ApproxRowsBytes(*rows);
  MutexLock lock(&mu_);
  Insert(Key(path, group), std::move(rows), nullptr, bytes);
}

void DecodedBlockCache::Insert(Key key, RowsPtr rows, FooterPtr footer,
                               uint64_t bytes) {
  if (index_.count(key) > 0) return;  // entries are immutable; first wins
  lru_.push_front(Entry{key, std::move(rows), std::move(footer), bytes});
  index_[std::move(key)] = lru_.begin();
  bytes_ += bytes;
  EvictToCapacity();
  CacheMetrics::Get().bytes->Set(static_cast<int64_t>(bytes_));
}

void DecodedBlockCache::EvictToCapacity() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    CacheMetrics::Get().evictions->Increment();
  }
}

void DecodedBlockCache::InvalidateFile(const std::string& path) {
  MutexLock lock(&mu_);
  // All keys of one file are contiguous in the map: [(path, 0), (path, MAX)].
  auto it = index_.lower_bound(Key(path, 0));
  uint64_t dropped = 0;
  while (it != index_.end() && it->first.first == path) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    it = index_.erase(it);
    ++dropped;
  }
  if (dropped > 0) {
    stats_.invalidated_entries += dropped;
    CacheMetrics::Get().invalidations->Increment(dropped);
    CacheMetrics::Get().bytes->Set(static_cast<int64_t>(bytes_));
  }
}

void DecodedBlockCache::InvalidateAll() {
  MutexLock lock(&mu_);
  uint64_t dropped = lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  if (dropped > 0) {
    stats_.invalidated_entries += dropped;
    CacheMetrics::Get().invalidations->Increment(dropped);
    CacheMetrics::Get().bytes->Set(0);
  }
}

DecodedBlockCache::Stats DecodedBlockCache::GetStats() const {
  MutexLock lock(&mu_);
  Stats out = stats_;
  out.bytes_cached = bytes_;
  out.entries = lru_.size();
  return out;
}

bool DecodedBlockCache::ContainsFile(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = index_.lower_bound(Key(path, 0));
  return it != index_.end() && it->first.first == path;
}

CachedFileReader::CachedFileReader(storage::ObjectStore* objects,
                                   DecodedBlockCache* cache, std::string path)
    : objects_(objects), cache_(cache), path_(std::move(path)) {}

Status CachedFileReader::Init() {
  if (cache_ != nullptr) {
    footer_ = cache_->GetFooter(path_);
    if (footer_ != nullptr) return Status::OK();
  }
  SL_RETURN_NOT_OK(EnsureFileLoaded());
  auto footer = std::make_shared<DecodedBlockCache::Footer>();
  footer->groups.reserve(reader_->num_row_groups());
  for (size_t g = 0; g < reader_->num_row_groups(); ++g) {
    footer->groups.push_back(reader_->row_group(g));
  }
  footer->file_bytes = reader_->file_size();
  footer_ = footer;
  if (cache_ != nullptr) cache_->PutFooter(path_, footer_);
  return Status::OK();
}

Result<DecodedBlockCache::RowsPtr> CachedFileReader::ReadRowGroup(
    size_t group) {
  if (cache_ != nullptr) {
    if (RowsPtr cached = cache_->GetGroup(path_, group)) return cached;
  }
  SL_RETURN_NOT_OK(EnsureFileLoaded());
  SL_ASSIGN_OR_RETURN(std::vector<format::Row> rows,
                      reader_->ReadRowGroup(group));
  auto shared =
      std::make_shared<const std::vector<format::Row>>(std::move(rows));
  if (cache_ != nullptr) cache_->PutGroup(path_, group, shared);
  return shared;
}

Result<std::vector<format::Row>> CachedFileReader::ReadAllRows() {
  std::vector<format::Row> all;
  for (size_t g = 0; g < num_row_groups(); ++g) {
    SL_ASSIGN_OR_RETURN(RowsPtr rows, ReadRowGroup(g));
    all.insert(all.end(), rows->begin(), rows->end());
  }
  return all;
}

Status CachedFileReader::EnsureFileLoaded() {
  if (reader_.has_value()) return Status::OK();
  SL_ASSIGN_OR_RETURN(Bytes data, objects_->Read(path_));
  storage_bytes_read_ += data.size();
  SL_ASSIGN_OR_RETURN(format::LakeFileReader reader,
                      format::LakeFileReader::Open(std::move(data)));
  reader_.emplace(std::move(reader));
  return Status::OK();
}

}  // namespace streamlake::table
