#ifndef STREAMLAKE_TABLE_LAKEHOUSE_H_
#define STREAMLAKE_TABLE_LAKEHOUSE_H_

#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "query/sql_parser.h"
#include "table/table.h"

namespace streamlake::table {

/// \brief The lakehouse service: CREATE TABLE / DROP TABLE (soft + hard) /
/// restore, and the handle registry for Table objects (Section V-B).
class LakehouseService {
 public:
  /// `scan_pool` / `block_cache` (both optional, owned by the core facade)
  /// are handed to every Table this service opens: the pool parallelizes
  /// Select across data files, the cache serves repeat reads.
  LakehouseService(MetadataStore* meta, storage::ObjectStore* objects,
                   sim::SimClock* clock, sim::NetworkModel* compute_link,
                   TableOptions default_options = TableOptions(),
                   ThreadPool* scan_pool = nullptr,
                   DecodedBlockCache* block_cache = nullptr);

  /// CREATE TABLE: register schema/path/partitioning in the catalog and
  /// create the /data and /metadata directories.
  Result<Table*> CreateTable(const std::string& name,
                             const format::Schema& schema,
                             const PartitionSpec& partition_spec,
                             const TableOptions* options = nullptr);

  /// Resolve a live table.
  Result<Table*> GetTable(const std::string& name);

  /// Execute a parsed SELECT — the multi-table read entry point. Every
  /// referenced table is resolved and its snapshot pinned in one pass
  /// BEFORE any scan starts, so a join never observes a torn cross-table
  /// state (a commit landing mid-query affects either all of its scans or
  /// none). Single-table statements keep Table::Select's exact behavior.
  /// `options.snapshot_id` cannot be combined with joins: snapshot ids
  /// are per-table.
  Result<query::QueryResult> Query(const query::SqlStatement& statement,
                                   const SelectOptions& options = {},
                                   SelectMetrics* metrics = nullptr);

  /// Drop table soft: unregister but keep data for restoration.
  Status DropTableSoft(const std::string& name);

  /// Drop table hard: delete /data and /metadata and clear the catalog
  /// (clearing the acceleration cache first, then the persistent layer).
  Status DropTableHard(const std::string& name);

  /// Restore a soft-dropped table: "a new table can be created and linked
  /// to the original table path".
  Result<Table*> RestoreTable(const std::string& name);

  std::vector<std::string> ListTables() const { return meta_->ListTables(); }

  /// MetaFresher pass: flush cached metadata to persistent files.
  Result<size_t> FlushMetadata() { return meta_->FlushPending(); }

  MetadataStore* metadata_store() { return meta_; }

 private:
  MetadataStore* meta_;
  storage::ObjectStore* objects_;
  sim::SimClock* clock_;
  sim::NetworkModel* compute_link_;
  TableOptions default_options_;
  ThreadPool* scan_pool_;           // may be nullptr
  DecodedBlockCache* block_cache_;  // may be nullptr
  Mutex mu_{LockRank::kLakehouse, "table.lakehouse"};
  std::map<std::string, std::unique_ptr<Table>> tables_ GUARDED_BY(mu_);
  uint64_t next_table_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace streamlake::table

#endif  // STREAMLAKE_TABLE_LAKEHOUSE_H_
