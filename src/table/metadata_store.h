#ifndef STREAMLAKE_TABLE_METADATA_STORE_H_
#define STREAMLAKE_TABLE_METADATA_STORE_H_

#include <deque>
#include <string>

#include "common/mutex.h"
#include "kv/kv_store.h"
#include "storage/object_store.h"
#include "table/metadata.h"

namespace streamlake::table {

/// Whether the lakehouse metadata path uses the acceleration of Fig. 9.
enum class MetadataMode {
  /// Baseline "file-based catalog system": every catalog/commit/snapshot
  /// read and write is a small object-store I/O.
  kFileBased,
  /// StreamLake metadata acceleration: reads/writes hit the KV write
  /// cache; the MetaFresher flushes aggregated files asynchronously.
  kAccelerated,
};

/// \brief Point-in-time sample of the process-wide `table.metadata.*`
/// registry counters (common/metrics.h). The metadata path reports
/// through MetricsRegistry; per-operation numbers (Table::SelectMetrics)
/// are deltas between two samples: exact in single-threaded tests and
/// benches, an upper bound when other threads touch table metadata
/// concurrently.
struct MetadataCounters {
  uint64_t reads = 0;        // metadata objects / KV entries read
  uint64_t bytes_read = 0;   // metadata bytes pulled into the reader
  uint64_t small_ios = 0;    // object-store reads (the Fig. 15a pain)

  /// Sample the registry counters now.
  static MetadataCounters Capture();
  /// Work done between `start` (the earlier sample) and *this.
  MetadataCounters operator-(const MetadataCounters& start) const;
};

/// \brief Storage for catalog entries, commits, and snapshots, in either
/// file-based or accelerated mode (Section V-B, INSERT steps b/c).
///
/// In accelerated mode, writes land in the KV write cache ("metadata
/// updates are mostly small I/O operations ... we leverage a write cache
/// to aggregate the metadata updates") and FlushPending() plays the
/// MetaFresher: it "transforms the commits and snapshots from key-value
/// pairs to files and writes them to the table/metadata directory".
class MetadataStore {
 public:
  MetadataStore(storage::ObjectStore* objects, kv::KvStore* cache,
                MetadataMode mode)
      : objects_(objects), cache_(cache), mode_(mode) {}

  MetadataMode mode() const { return mode_; }

  // ---- catalog ----
  Status PutTableInfo(const TableInfo& info);
  Result<TableInfo> GetTableInfo(const std::string& name);
  Status DeleteTableInfo(const std::string& name);
  std::vector<std::string> ListTables() const;

  // ---- commits ----
  Status PutCommit(const std::string& table_path, const CommitFile& commit);
  Result<CommitFile> GetCommit(const std::string& table_path, uint64_t seq);
  Status DeleteCommit(const std::string& table_path, uint64_t seq);

  // ---- snapshots ----
  Status PutSnapshot(const std::string& table_path, const SnapshotMeta& snap);
  Result<SnapshotMeta> GetSnapshot(const std::string& table_path, uint64_t id);
  Status DeleteSnapshot(const std::string& table_path, uint64_t id);

  /// MetaFresher: flush cached metadata entries to persistent files.
  /// Returns the number of entries flushed. No-op in file-based mode.
  Result<size_t> FlushPending();

  size_t pending_flushes() const;

 private:
  static std::string CatalogKey(const std::string& name);
  static std::string CommitKey(const std::string& path, uint64_t seq);
  static std::string SnapshotKey(const std::string& path, uint64_t id);
  static std::string CommitFilePath(const std::string& path, uint64_t seq);
  static std::string SnapshotFilePath(const std::string& path, uint64_t id);
  static std::string CatalogFilePath(const std::string& name);

  Result<Bytes> ReadEntry(const std::string& cache_key,
                          const std::string& file_path);
  Status WriteEntry(const std::string& cache_key, const std::string& file_path,
                    ByteView data);
  Status DeleteEntry(const std::string& cache_key,
                     const std::string& file_path);

  storage::ObjectStore* objects_;
  kv::KvStore* cache_;
  MetadataMode mode_;
  mutable Mutex mu_{LockRank::kMetadataStore, "table.metadata_store"};
  std::deque<std::pair<std::string, std::string>> pending_
      GUARDED_BY(mu_);  // key, file path
};

}  // namespace streamlake::table

#endif  // STREAMLAKE_TABLE_METADATA_STORE_H_
