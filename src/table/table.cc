#include "table/table.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/metrics.h"
#include "common/threadpool.h"
#include "table/block_cache.h"

namespace streamlake::table {

namespace {

/// File-level stats of every column of `rows`: min/max over non-NULL
/// values plus the extended null_count / ndv / avg_width triple that
/// file pruning and LakeBrain's priors consume.
std::map<std::string, format::ColumnStats> ComputeStats(
    const format::Schema& schema, const std::vector<format::Row>& rows) {
  std::map<std::string, format::ColumnStats> stats;
  if (rows.empty()) return stats;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    format::ColumnStats s;
    s.has_extended = true;
    std::set<format::Value> distinct;
    double total_width = 0.0;
    for (const format::Row& row : rows) {
      const format::Value& v = row.fields[c];
      if (format::IsNull(v)) {
        ++s.null_count;
        continue;
      }
      if (!s.min.has_value() || format::CompareValues(v, *s.min) < 0) {
        s.min = v;
      }
      if (!s.max.has_value() || format::CompareValues(v, *s.max) > 0) {
        s.max = v;
      }
      distinct.insert(v);
      switch (schema.field(c).type) {
        case format::DataType::kBool:
          total_width += 1.0;
          break;
        case format::DataType::kInt64:
        case format::DataType::kDouble:
          total_width += 8.0;
          break;
        case format::DataType::kString:
          total_width += static_cast<double>(std::get<std::string>(v).size());
          break;
        case format::DataType::kNull:
          break;  // unreachable: schemas never carry kNull fields
      }
    }
    s.ndv = distinct.size();
    uint64_t non_null = rows.size() - s.null_count;
    s.avg_width = non_null > 0 ? total_width / static_cast<double>(non_null)
                               : 0.0;
    stats[schema.field(c).name] = std::move(s);
  }
  return stats;
}

/// Columns a Select must materialize: group-by + aggregate inputs, or the
/// projection. SELECT * (no aggregates, no projection) needs every column.
/// Unknown names are dropped — the executor reports them as errors.
ColumnSelection RequiredColumns(const format::Schema& schema,
                                const query::QuerySpec& spec) {
  if (spec.aggregates.empty() && spec.projection.empty()) {
    return ColumnSelection::All();
  }
  std::set<int> cols;
  auto add = [&](const std::string& name) {
    int idx = schema.FieldIndex(name);
    if (idx >= 0) cols.insert(idx);
  };
  if (spec.aggregates.empty()) {
    for (const std::string& c : spec.projection) add(c);
  } else {
    for (const std::string& c : spec.group_by) add(c);
    for (const query::AggregateSpec& agg : spec.aggregates) {
      if (!agg.column.empty()) add(agg.column);
    }
  }
  return ColumnSelection::Of(std::vector<int>(cols.begin(), cols.end()));
}

/// One merge-on-read delete applicable to the file being scanned, with its
/// predicate columns resolved to schema indices up front.
struct ApplicableDelete {
  std::vector<std::pair<const query::Predicate*, size_t>> preds;
};

/// Evaluate `p` against every dictionary entry of a dict-view chunk:
/// `table[code]` says whether rows carrying `code` match. This is the
/// compute-on-compressed step — |dict| evaluations instead of |rows|.
std::vector<char> DictMatchTable(const query::Predicate& p,
                                 const format::ColumnChunkData& chunk) {
  std::vector<char> table;
  if (chunk.type == format::DataType::kInt64) {
    const auto& dict = std::get<std::vector<int64_t>>(chunk.dict);
    table.resize(dict.size(), 0);
    for (size_t i = 0; i < dict.size(); ++i) {
      table[i] = p.Matches(format::Value(dict[i])) ? 1 : 0;
    }
  } else {
    const auto& dict = std::get<std::vector<std::string>>(chunk.dict);
    table.resize(dict.size(), 0);
    for (size_t i = 0; i < dict.size(); ++i) {
      table[i] = p.Matches(format::Value(dict[i])) ? 1 : 0;
    }
  }
  return table;
}

/// Value range covered by a partition string under `spec`, for pruning:
/// identity -> [v, v]; day=N -> [N*86400, (N+1)*86400 - 1] on the source
/// column.
bool PartitionRange(const PartitionSpec& spec, const format::Schema& schema,
                    const std::string& partition, format::Value* min,
                    format::Value* max) {
  if (!spec.partitioned() || partition.empty()) return false;
  int col = schema.FieldIndex(spec.column);
  if (col < 0) return false;
  switch (spec.transform) {
    case PartitionSpec::Transform::kIdentity: {
      switch (schema.field(col).type) {
        case format::DataType::kString:
          *min = partition;
          *max = partition;
          return true;
        case format::DataType::kInt64: {
          int64_t v = std::stoll(partition);
          *min = v;
          *max = v;
          return true;
        }
        default:
          return false;
      }
    }
    case PartitionSpec::Transform::kDay: {
      if (partition.rfind("day=", 0) != 0) return false;
      int64_t day = std::stoll(partition.substr(4));
      *min = day * 86400;
      *max = (day + 1) * 86400 - 1;
      return true;
    }
    case PartitionSpec::Transform::kMonth: {
      if (partition.rfind("month=", 0) != 0) return false;
      int64_t month = std::stoll(partition.substr(6));
      *min = month * (86400 * 30);
      *max = (month + 1) * (86400 * 30) - 1;
      return true;
    }
    case PartitionSpec::Transform::kNone:
      return false;
  }
  return false;
}

}  // namespace

Table::Table(std::string name, MetadataStore* meta,
             storage::ObjectStore* objects, sim::SimClock* clock,
             sim::NetworkModel* compute_link, TableOptions options,
             ThreadPool* scan_pool, DecodedBlockCache* block_cache)
    : name_(std::move(name)),
      meta_(meta),
      objects_(objects),
      clock_(clock),
      compute_link_(compute_link),
      options_(options),
      scan_pool_(scan_pool),
      block_cache_(block_cache) {}

Result<TableInfo> Table::Info() const {
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name_));
  if (info.soft_deleted) {
    return Status::NotFound("table " + name_ + " is dropped");
  }
  return info;
}

Result<DataFileMeta> Table::WriteDataFile(const TableInfo& info,
                                          const std::string& partition,
                                          const std::vector<format::Row>& rows) {
  format::LakeFileWriter writer(info.schema, options_.file_options);
  SL_RETURN_NOT_OK(writer.AppendBatch(rows));
  SL_ASSIGN_OR_RETURN(Bytes file, writer.Finish());

  DataFileMeta meta;
  meta.partition = partition;
  meta.record_count = rows.size();
  meta.file_bytes = file.size();
  meta.column_stats = ComputeStats(info.schema, rows);
  std::string dir = partition.empty() ? "" : partition + "/";
  meta.path = info.path + "/data/" + dir + "f-" +
              std::to_string(info.table_id) + "-" +
              std::to_string(clock_->NowNanos()) + "-" +
              std::to_string(reinterpret_cast<uintptr_t>(&meta) & 0xFFFF);
  SL_RETURN_NOT_OK(objects_->Write(meta.path, ByteView(file)));
  return meta;
}

Status Table::CommitChanges(const CommitRequest& request) {
  MutexLock lock(&commit_mu_);
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name_));
  if (info.soft_deleted) return Status::NotFound("table dropped");

  // Optimistic validation for rewrites: a commit after our base that
  // touched the same partitions conflicts ("both compaction and data
  // ingestion require commits, which may have conflicts, leading to
  // compaction failure").
  if (request.is_rewrite && request.base_snapshot_id != 0 &&
      info.current_snapshot_id != request.base_snapshot_id) {
    std::set<std::string> ours;
    for (const DataFileMeta& f : request.added) ours.insert(f.partition);
    for (const DataFileMeta& f : request.removed) ours.insert(f.partition);
    // Find commits after the base snapshot.
    SL_ASSIGN_OR_RETURN(
        SnapshotMeta base,
        meta_->GetSnapshot(info.path, request.base_snapshot_id));
    SL_ASSIGN_OR_RETURN(
        SnapshotMeta head,
        meta_->GetSnapshot(info.path, info.current_snapshot_id));
    std::set<uint64_t> base_commits(base.commit_seqs.begin(),
                                    base.commit_seqs.end());
    for (uint64_t seq : head.commit_seqs) {
      if (base_commits.count(seq)) continue;
      SL_ASSIGN_OR_RETURN(CommitFile commit,
                          meta_->GetCommit(info.path, seq));
      for (const std::string& p : commit.TouchedPartitions()) {
        if (ours.count(p)) {
          return Status::Conflict("partition '" + p +
                                  "' changed since base snapshot");
        }
      }
    }
  }

  CommitFile commit;
  commit.commit_seq = info.next_commit_seq++;
  commit.timestamp = static_cast<int64_t>(clock_->NowSeconds());
  commit.added = request.added;
  commit.removed = request.removed;
  for (DataFileMeta& f : commit.added) {
    if (f.added_seq == 0) f.added_seq = commit.commit_seq;
  }
  for (const query::Conjunction& predicate : request.delete_predicates) {
    commit.deletes.push_back(DeleteRecord{commit.commit_seq, predicate});
  }
  SL_RETURN_NOT_OK(meta_->PutCommit(info.path, commit));

  SnapshotMeta snap;
  Status s = Status::OK();
  if (info.current_snapshot_id != 0) {
    auto head = meta_->GetSnapshot(info.path, info.current_snapshot_id);
    if (head.ok()) {
      snap = std::move(*head);
    } else {
      s = head.status();
    }
  }
  bool snap_written = false;
  if (s.ok()) {
    snap.snapshot_id = info.next_snapshot_id++;
    snap.timestamp = commit.timestamp;
    snap.commit_seqs.push_back(commit.commit_seq);
    snap.added_files = commit.added.size();
    snap.removed_files = commit.removed.size();
    snap.added_rows = 0;
    snap.removed_rows = 0;
    for (const DataFileMeta& f : commit.added) {
      snap.added_rows += f.record_count;
    }
    for (const DataFileMeta& f : commit.removed) {
      snap.removed_rows += f.record_count;
    }
    snap.total_files += commit.added.size() - commit.removed.size();
    snap.total_rows += snap.added_rows - snap.removed_rows;
    s = meta_->PutSnapshot(info.path, snap);
    snap_written = s.ok();
  }
  if (s.ok()) {
    // Readers at the old snapshot keep their view; this flips visibility
    // ("changes made by a writer will not be visible to readers until they
    // are committed and recorded in a snapshot").
    info.current_snapshot_id = snap.snapshot_id;
    info.modified_at = commit.timestamp;
    info.snapshot_log.emplace_back(snap.snapshot_id, snap.timestamp);
    s = meta_->PutTableInfo(info);
  }
  if (!s.ok()) {
    // Retract the commit/snapshot records: the catalog still points at
    // the old head, so they must not linger as half-committed state.
    if (snap_written) {
      meta_->DeleteSnapshot(info.path, snap.snapshot_id)
          .LogIgnored("commit rollback");
    }
    meta_->DeleteCommit(info.path, commit.commit_seq)
        .LogIgnored("commit rollback");
    return s;
  }
  // The removed files can no longer serve the new head; drop their cached
  // blocks now instead of waiting for LRU churn (time-travel readers of
  // older snapshots simply repopulate them). kTableBlockCache ranks below
  // kTableCommit, so invalidating under the commit lock is legal.
  if (block_cache_ != nullptr) {
    for (const DataFileMeta& f : commit.removed) {
      block_cache_->InvalidateFile(f.path);
    }
  }
  return Status::OK();
}

Status Table::Insert(const std::vector<format::Row>& rows) {
  if (rows.empty()) return Status::OK();
  SL_ASSIGN_OR_RETURN(TableInfo info, Info());
  for (const format::Row& row : rows) {
    SL_RETURN_NOT_OK(info.schema.ValidateRow(row));
  }
  // Group rows by partition, then write files of at most
  // max_rows_per_file rows each.
  std::map<std::string, std::vector<format::Row>> by_partition;
  for (const format::Row& row : rows) {
    SL_ASSIGN_OR_RETURN(std::string partition,
                        info.partition_spec.PartitionOf(info.schema, row));
    by_partition[partition].push_back(row);
  }
  CommitRequest request;
  Status s = Status::OK();
  for (auto& [partition, part_rows] : by_partition) {
    for (size_t begin = 0; s.ok() && begin < part_rows.size();
         begin += options_.max_rows_per_file) {
      size_t end =
          std::min(begin + options_.max_rows_per_file, part_rows.size());
      std::vector<format::Row> chunk(part_rows.begin() + begin,
                                     part_rows.begin() + end);
      auto meta = WriteDataFile(info, partition, chunk);
      if (!meta.ok()) {
        s = meta.status();
        break;
      }
      request.added.push_back(std::move(*meta));
    }
    if (!s.ok()) break;
  }
  if (!s.ok()) {
    // None of the files ever reached a commit; delete them (best-effort)
    // instead of leaving orphans in the object namespace.
    for (const DataFileMeta& f : request.added) {
      objects_->Delete(f.path).LogIgnored("insert rollback");
    }
    return s;
  }
  return CommitChanges(request);
}

Result<std::vector<DataFileMeta>> Table::ReplaySnapshot(
    const TableInfo& info, uint64_t snapshot_id,
    uint64_t* commit_meta_bytes_sum, uint64_t* commit_meta_bytes_max,
    std::vector<DeleteRecord>* deletes) {
  std::map<std::string, DataFileMeta> live;
  if (snapshot_id == 0) return std::vector<DataFileMeta>();
  SL_ASSIGN_OR_RETURN(SnapshotMeta snap,
                      meta_->GetSnapshot(info.path, snapshot_id));
  for (uint64_t seq : snap.commit_seqs) {
    SL_ASSIGN_OR_RETURN(CommitFile commit,
                        meta_->GetCommit(info.path, seq));
    size_t bytes = commit.ByteSize();
    if (commit_meta_bytes_sum != nullptr) *commit_meta_bytes_sum += bytes;
    if (commit_meta_bytes_max != nullptr) {
      *commit_meta_bytes_max = std::max<uint64_t>(*commit_meta_bytes_max, bytes);
    }
    for (const DataFileMeta& f : commit.removed) live.erase(f.path);
    for (const DataFileMeta& f : commit.added) live[f.path] = f;
    if (deletes != nullptr) {
      for (const DeleteRecord& d : commit.deletes) deletes->push_back(d);
    }
  }
  std::vector<DataFileMeta> files;
  files.reserve(live.size());
  for (auto& [path, meta] : live) files.push_back(std::move(meta));
  return files;
}

bool Table::RowMasked(const std::vector<DeleteRecord>& deletes,
                      uint64_t added_seq, const format::Schema& schema,
                      const format::Row& row) {
  for (const DeleteRecord& d : deletes) {
    if (d.seq > added_seq && d.predicate.Matches(schema, row)) return true;
  }
  return false;
}

bool Table::FileMayMatch(const TableInfo& info, const DataFileMeta& file,
                         const query::Conjunction& where) const {
  // Partition-range pruning.
  format::Value pmin, pmax;
  if (PartitionRange(info.partition_spec, info.schema, file.partition, &pmin,
                     &pmax)) {
    format::ColumnStats stats;
    stats.min = pmin;
    stats.max = pmax;
    if (!where.MayMatchStats(info.partition_spec.column, stats)) return false;
  }
  // File-level column stats pruning (record_count enables IS [NOT] NULL
  // pruning against the extended null_count stat).
  for (const auto& [column, stats] : file.column_stats) {
    if (!where.MayMatchStats(column, stats, file.record_count)) return false;
  }
  return true;
}

bool Table::PartitionFullyCovered(const TableInfo& info,
                                  const std::string& partition,
                                  const query::Conjunction& where) const {
  if (where.empty()) return true;  // DELETE without WHERE kills everything
  if (!info.partition_spec.partitioned()) return false;
  format::Value pmin, pmax;
  if (!PartitionRange(info.partition_spec, info.schema, partition, &pmin,
                      &pmax)) {
    return false;
  }
  for (const query::Predicate& predicate : where.predicates()) {
    if (predicate.column != info.partition_spec.column) return false;
    if (format::TypeOf(pmin) != format::TypeOf(predicate.literal)) {
      return false;
    }
    // Every value in [pmin, pmax] must satisfy the predicate.
    if (!predicate.Matches(pmin) || !predicate.Matches(pmax)) return false;
  }
  return true;
}

Result<query::QueryResult> Table::Select(const query::QuerySpec& spec,
                                         const SelectOptions& options,
                                         SelectMetrics* metrics) {
  SelectMetrics local_metrics;
  SelectMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = SelectMetrics();
  uint64_t start_ns = clock_->NowNanos();
  // Per-query metadata I/O is the delta of the process-wide counters over
  // the query (exact when single-threaded, an upper bound otherwise).
  MetadataCounters metadata_start = MetadataCounters::Capture();
  static Counter* selects =
      MetricsRegistry::Global().GetCounter("table.select.queries");
  static Histogram* select_sim_ns =
      MetricsRegistry::Global().GetHistogram("table.select.sim_ns");
  selects->Increment();

  // 1. Catalog: table profile + snapshot descriptions.
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name_));
  if (info.soft_deleted) return Status::NotFound("table dropped");

  SL_ASSIGN_OR_RETURN(uint64_t snapshot_id, ResolveSnapshotId(info, options));

  query::Executor executor(info.schema, spec);
  if (snapshot_id == 0) {
    m->metadata = MetadataCounters::Capture() - metadata_start;
    m->elapsed_ns = clock_->NowNanos() - start_ns;
    select_sim_ns->Record(m->elapsed_ns);
    return executor.Finalize();  // empty table
  }

  // 2+3. Snapshot + commits -> live file list + outstanding merge-on-read
  // deletes. File-based catalogs hold every commit in compute memory at
  // once; acceleration streams them.
  uint64_t commit_sum = 0, commit_max = 0;
  std::vector<DeleteRecord> delete_records;
  SL_ASSIGN_OR_RETURN(std::vector<DataFileMeta> files,
                      ReplaySnapshot(info, snapshot_id, &commit_sum,
                                     &commit_max, &delete_records));
  m->metadata = MetadataCounters::Capture() - metadata_start;
  uint64_t metadata_memory =
      meta_->mode() == MetadataMode::kFileBased ? commit_sum : commit_max;
  m->peak_memory_bytes = std::max(m->peak_memory_bytes, metadata_memory);
  if (options.memory_budget_bytes > 0 &&
      m->peak_memory_bytes > options.memory_budget_bytes) {
    return Status::OutOfMemory("metadata working set " +
                               std::to_string(m->peak_memory_bytes) +
                               "B exceeds compute memory");
  }

  // 4. Prune by partition + file stats.
  std::vector<const DataFileMeta*> scan_files;
  for (const DataFileMeta& file : files) {
    if (!FileMayMatch(info, file, spec.where)) {
      ++m->files_skipped;
      m->data_bytes_skipped += file.file_bytes;
      continue;
    }
    scan_files.push_back(&file);
  }
  static Histogram* fanout =
      MetricsRegistry::Global().GetHistogram("table.select.fanout");
  fanout->Record(scan_files.size());

  // 5. Scan survivors, one job per file: fanned out on the shared scan
  // pool when the facade configured one, inline otherwise. A job holds no
  // table lock across the simulated device I/O (same discipline as
  // StreamObject::AppendBatch) and runs a private fragment executor, so
  // jobs never contend on query state.
  struct ScanJob {
    std::unique_ptr<query::Executor> executor;
    SelectMetrics metrics;
    Status status;
  };
  ColumnSelection required = RequiredColumns(info.schema, spec);
  std::vector<ScanJob> jobs(scan_files.size());
  auto run_job = [&](size_t i) {
    ScanJob& job = jobs[i];
    ++job.metrics.files_scanned;
    job.executor = std::make_unique<query::Executor>(info.schema, spec);
    job.status =
        ScanOneFile(info, spec, options, delete_records, *scan_files[i],
                    metadata_memory, required, job.executor.get(),
                    &job.metrics);
  };
  if (scan_pool_ != nullptr && jobs.size() > 1) {
    static Counter* parallel_jobs =
        MetricsRegistry::Global().GetCounter("table.select.parallel_jobs");
    parallel_jobs->Increment(jobs.size());
    // Per-query completion barrier: the pool is shared across queries, so
    // a pool-wide Wait() would also wait on other queries' jobs.
    Mutex barrier_mu{LockRank::kTableScanBarrier, "table.select.barrier"};
    CondVar done_cv;
    size_t remaining = jobs.size();
    for (size_t i = 0; i < jobs.size(); ++i) {
      scan_pool_->Submit([&, i]() {
        run_job(i);
        MutexLock done(&barrier_mu);
        --remaining;
        done_cv.NotifyAll();
      });
    }
    MutexLock wait(&barrier_mu);
    while (remaining > 0) done_cv.Wait(&barrier_mu);
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) run_job(i);
  }

  // 6. Merge fragments deterministically in file order: first failure wins
  // (where the serial loop would have stopped), float SUMs accumulate in
  // file order, and ORDER BY / LIMIT run once in Finalize below, after the
  // merge — so the result is byte-identical to the serial path.
  for (ScanJob& job : jobs) {
    SL_RETURN_NOT_OK(job.status);
    m->files_scanned += job.metrics.files_scanned;
    m->row_groups_scanned += job.metrics.row_groups_scanned;
    m->row_groups_skipped += job.metrics.row_groups_skipped;
    m->data_bytes_read += job.metrics.data_bytes_read;
    m->bytes_to_compute += job.metrics.bytes_to_compute;
    m->bytes_decoded += job.metrics.bytes_decoded;
    m->columns_decoded += job.metrics.columns_decoded;
    m->rows_materialized += job.metrics.rows_materialized;
    m->dict_code_prunes += job.metrics.dict_code_prunes;
    m->peak_memory_bytes =
        std::max(m->peak_memory_bytes, job.metrics.peak_memory_bytes);
    SL_RETURN_NOT_OK(executor.MergeFrom(std::move(*job.executor)));
  }
  static Counter* bytes_decoded =
      MetricsRegistry::Global().GetCounter("table.select.bytes_decoded");
  static Counter* columns_decoded =
      MetricsRegistry::Global().GetCounter("table.select.columns_decoded");
  static Counter* rows_materialized =
      MetricsRegistry::Global().GetCounter("table.select.rows_materialized");
  static Counter* dict_code_prunes =
      MetricsRegistry::Global().GetCounter("table.select.dict_code_prunes");
  bytes_decoded->Increment(m->bytes_decoded);
  columns_decoded->Increment(m->columns_decoded);
  rows_materialized->Increment(m->rows_materialized);
  dict_code_prunes->Increment(m->dict_code_prunes);
  SL_ASSIGN_OR_RETURN(query::QueryResult result, executor.Finalize());
  m->metadata = MetadataCounters::Capture() - metadata_start;
  m->elapsed_ns = clock_->NowNanos() - start_ns;
  select_sim_ns->Record(m->elapsed_ns);
  return result;
}

Status Table::ScanOneFile(const TableInfo& info, const query::QuerySpec& spec,
                          const SelectOptions& options,
                          const std::vector<DeleteRecord>& delete_records,
                          const DataFileMeta& file, uint64_t metadata_memory,
                          const ColumnSelection& required,
                          query::Executor* executor, SelectMetrics* m) {
  return ScanFileRows(
      info, spec.where, options, delete_records, file, metadata_memory,
      required,
      [executor](std::vector<format::Row> rows, uint64_t scanned) {
        return executor->ConsumeFiltered(std::move(rows), scanned);
      },
      m);
}

Status Table::ScanFileRows(
    const TableInfo& info, const query::Conjunction& where,
    const SelectOptions& options,
    const std::vector<DeleteRecord>& delete_records, const DataFileMeta& file,
    uint64_t metadata_memory, const ColumnSelection& required,
    const std::function<Status(std::vector<format::Row>, uint64_t)>& consume,
    SelectMetrics* m) {
  {
    MutexLock access_lock(&access_mu_);
    ++partition_access_[file.partition];
  }
  CachedFileReader reader(objects_, block_cache_, file.path);
  SL_RETURN_NOT_OK(reader.Init());

  if (!options.pushdown) {
    // Whole file crosses the network to the compute engine and sits in
    // its memory during the scan. A cache hit still pays the transfer —
    // the cache sits storage-side, saving PLog I/O and decode only.
    compute_link_->ChargeTransfer(reader.file_bytes());
    m->bytes_to_compute += reader.file_bytes();
    m->peak_memory_bytes =
        std::max(m->peak_memory_bytes, metadata_memory + reader.file_bytes());
    if (options.memory_budget_bytes > 0 &&
        m->peak_memory_bytes > options.memory_budget_bytes) {
      return Status::OutOfMemory("file scan exceeds compute memory");
    }
  }

  const format::Schema& schema = info.schema;
  const size_t num_fields = schema.num_fields();

  // Resolve predicate-referenced column indices ONCE per file, not once
  // per row group. A predicate on an unknown column makes the whole
  // conjunction unsatisfiable (Conjunction::Matches semantics) — the scan
  // still counts visible rows but matches none and decodes nothing.
  bool impossible = false;
  std::vector<std::pair<const query::Predicate*, size_t>> preds;
  for (const query::Predicate& p : where.predicates()) {
    int idx = schema.FieldIndex(p.column);
    if (idx < 0) {
      impossible = true;
      break;
    }
    preds.emplace_back(&p, static_cast<size_t>(idx));
  }

  // Merge-on-read deletes newer than this file, with their referenced
  // columns resolved up front. A delete naming an unknown column masks
  // nothing; an empty delete conjunction masks every row.
  std::vector<ApplicableDelete> applicable;
  for (const DeleteRecord& d : delete_records) {
    if (d.seq <= file.added_seq) continue;
    ApplicableDelete ad;
    bool unknown = false;
    for (const query::Predicate& p : d.predicate.predicates()) {
      int idx = schema.FieldIndex(p.column);
      if (idx < 0) {
        unknown = true;
        break;
      }
      ad.preds.emplace_back(&p, static_cast<size_t>(idx));
    }
    if (!unknown) applicable.push_back(std::move(ad));
  }

  // Filter columns (WHERE + delete predicates) drive the selection vector;
  // output columns are what materialized rows must carry. Everything else
  // stays encoded on the storage side.
  std::vector<char> filter_col(num_fields, 0);
  if (!impossible) {
    for (const auto& [p, idx] : preds) filter_col[idx] = 1;
  }
  for (const ApplicableDelete& ad : applicable) {
    for (const auto& [p, idx] : ad.preds) filter_col[idx] = 1;
  }
  std::vector<char> output_col(num_fields, required.all ? 1 : 0);
  if (!required.all) {
    for (int c : required.columns) {
      if (c >= 0 && static_cast<size_t>(c) < num_fields) output_col[c] = 1;
    }
  }

  for (size_t g = 0; g < reader.num_row_groups(); ++g) {
    const format::RowGroupMeta& group = reader.row_group(g);
    // Row-group skipping via footer stats, checking only the columns the
    // WHERE clause references (served from the cache on repeat queries,
    // so skipping costs no storage I/O at all).
    bool may_match = true;
    for (const auto& [p, idx] : preds) {
      if (!where.MayMatchStats(schema.field(idx).name,
                               group.columns[idx].stats, group.num_rows)) {
        may_match = false;
        break;
      }
    }
    if (!may_match) {
      ++m->row_groups_skipped;
      continue;
    }
    ++m->row_groups_scanned;

    const size_t rows = group.num_rows;
    std::vector<DecodedBlockCache::ColumnPtr> chunks(num_fields);
    auto chunk_at =
        [&](size_t c) -> Result<const format::ColumnChunkData*> {
      if (chunks[c] == nullptr) {
        SL_ASSIGN_OR_RETURN(chunks[c], reader.ReadColumnChunk(g, c));
      }
      return chunks[c].get();
    };

    // Merge-on-read: mask rows hit by deletes newer than this file.
    // Cached chunks are pre-masking (masking depends on the query's
    // snapshot), so this stays per-query.
    std::vector<char> visible(rows, 1);
    uint64_t visible_rows = rows;
    for (const ApplicableDelete& ad : applicable) {
      for (const auto& [p, idx] : ad.preds) {
        SL_RETURN_NOT_OK(chunk_at(idx).status());
      }
      for (size_t r = 0; r < rows; ++r) {
        if (!visible[r]) continue;
        bool masked = true;
        for (const auto& [p, idx] : ad.preds) {
          if (!p->Matches(chunks[idx]->ValueAt(r))) {
            masked = false;
            break;
          }
        }
        if (masked) {
          visible[r] = 0;
          --visible_rows;
        }
      }
    }

    if (impossible) {
      SL_RETURN_NOT_OK(consume({}, visible_rows));
      continue;
    }

    // Selection vector: AND each conjunct in, column at a time. Dictionary
    // chunks are evaluated in code space — |dict| predicate evaluations
    // instead of |rows|, and a literal absent from the dictionary
    // short-circuits the whole group without touching the value stream.
    std::vector<char> selected = visible;
    uint64_t selected_rows = visible_rows;
    for (const auto& [p, idx] : preds) {
      if (selected_rows == 0) break;
      SL_ASSIGN_OR_RETURN(const format::ColumnChunkData* chunk,
                          chunk_at(idx));
      if (p->op == query::CompareOp::kIsNull) {
        for (size_t r = 0; r < rows; ++r) {
          if (selected[r] && !chunk->IsNullAt(r)) {
            selected[r] = 0;
            --selected_rows;
          }
        }
      } else if (p->op == query::CompareOp::kIsNotNull) {
        for (size_t r = 0; r < rows; ++r) {
          if (selected[r] && chunk->IsNullAt(r)) {
            selected[r] = 0;
            --selected_rows;
          }
        }
      } else if (chunk->dict_view) {
        std::vector<char> match = DictMatchTable(*p, *chunk);
        bool any = false;
        for (char c : match) any |= (c != 0);
        if (!any) {
          // No dictionary entry satisfies the predicate: nothing in this
          // group can match. Equality/IN against an absent literal is the
          // textbook compute-on-compressed prune.
          if (p->op == query::CompareOp::kEq ||
              p->op == query::CompareOp::kIn) {
            ++m->dict_code_prunes;
          }
          selected_rows = 0;
          break;
        }
        for (size_t r = 0; r < rows; ++r) {
          if (selected[r] &&
              (chunk->IsNullAt(r) || !match[chunk->codes[r]])) {
            selected[r] = 0;
            --selected_rows;
          }
        }
      } else {
        for (size_t r = 0; r < rows; ++r) {
          if (selected[r] && !p->Matches(chunk->ValueAt(r))) {
            selected[r] = 0;
            --selected_rows;
          }
        }
      }
    }

    // Late materialization: only now, with the selection settled, decode
    // the surviving output columns and build rows for the matches.
    std::vector<format::Row> matched;
    if (selected_rows > 0) {
      for (size_t c = 0; c < num_fields; ++c) {
        if (output_col[c]) SL_RETURN_NOT_OK(chunk_at(c).status());
      }
      matched.reserve(selected_rows);
      for (size_t r = 0; r < rows; ++r) {
        if (!selected[r]) continue;
        format::Row row;
        row.fields.resize(num_fields, format::Value(std::monostate{}));
        for (size_t c = 0; c < num_fields; ++c) {
          if (chunks[c] != nullptr && (output_col[c] || filter_col[c])) {
            row.fields[c] = chunks[c]->ValueAt(r);
          }
        }
        matched.push_back(std::move(row));
      }
    }
    m->rows_materialized += matched.size();

    if (options.pushdown) {
      // Storage-side filter: only matched rows cross the network, charged
      // at their actual average width from the footer stats rather than a
      // flat per-row constant.
      double row_width = 0.0;
      for (size_t c = 0; c < num_fields; ++c) {
        if (!(output_col[c] || filter_col[c])) continue;
        const format::ColumnStats& cs = group.columns[c].stats;
        row_width += cs.has_extended ? cs.avg_width : 8.0;
      }
      uint64_t matched_bytes = static_cast<uint64_t>(
          row_width * static_cast<double>(matched.size()));
      compute_link_->ChargeTransfer(matched_bytes);
      m->bytes_to_compute += matched_bytes;
    }
    SL_RETURN_NOT_OK(consume(std::move(matched), visible_rows));
  }
  m->data_bytes_read += reader.storage_bytes_read();
  m->bytes_decoded += reader.bytes_decoded();
  m->columns_decoded += reader.chunks_decoded();
  return Status::OK();
}

Result<uint64_t> Table::ResolveSnapshotId(const TableInfo& info,
                                          const SelectOptions& options) {
  uint64_t snapshot_id = options.snapshot_id;
  if (snapshot_id == 0) {
    if (options.as_of_timestamp >= 0) {
      // Time travel: latest snapshot at or before the requested time.
      for (const auto& [id, ts] : info.snapshot_log) {
        if (ts <= options.as_of_timestamp) snapshot_id = id;
      }
      if (snapshot_id == 0) {
        return Status::NotFound("no snapshot at or before requested time");
      }
    } else {
      snapshot_id = info.current_snapshot_id;
    }
  }
  return snapshot_id;
}

Result<uint64_t> Table::ResolveSnapshot(const SelectOptions& options) const {
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name_));
  if (info.soft_deleted) return Status::NotFound("table dropped");
  return ResolveSnapshotId(info, options);
}

Result<ScanTotals> Table::ScanInto(const query::Conjunction& where,
                                   const SelectOptions& options,
                                   const ColumnSelection& required,
                                   RowSink* sink, SelectMetrics* metrics) {
  SelectMetrics local_metrics;
  SelectMetrics* m = metrics != nullptr ? metrics : &local_metrics;

  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name_));
  if (info.soft_deleted) return Status::NotFound("table dropped");
  SL_ASSIGN_OR_RETURN(uint64_t snapshot_id, ResolveSnapshotId(info, options));
  ScanTotals totals;
  if (snapshot_id == 0) return totals;  // empty table

  uint64_t commit_sum = 0, commit_max = 0;
  std::vector<DeleteRecord> delete_records;
  SL_ASSIGN_OR_RETURN(std::vector<DataFileMeta> files,
                      ReplaySnapshot(info, snapshot_id, &commit_sum,
                                     &commit_max, &delete_records));
  uint64_t metadata_memory =
      meta_->mode() == MetadataMode::kFileBased ? commit_sum : commit_max;
  m->peak_memory_bytes = std::max(m->peak_memory_bytes, metadata_memory);
  if (options.memory_budget_bytes > 0 &&
      m->peak_memory_bytes > options.memory_budget_bytes) {
    return Status::OutOfMemory("metadata working set " +
                               std::to_string(m->peak_memory_bytes) +
                               "B exceeds compute memory");
  }

  std::vector<const DataFileMeta*> scan_files;
  for (const DataFileMeta& file : files) {
    if (!FileMayMatch(info, file, where)) {
      ++m->files_skipped;
      m->data_bytes_skipped += file.file_bytes;
      continue;
    }
    scan_files.push_back(&file);
  }

  // One job per surviving file, fanned out like Select. Each job filters
  // its rows locally, then hands the finished fragment to the sink from
  // the pool thread — so a join probe can run concurrently per fragment —
  // and only then joins the barrier. Totals merge in file order below, so
  // the fragment numbering (and every downstream merge) is deterministic.
  struct ScanJob {
    ScanTotals totals;
    SelectMetrics metrics;
    Status status;
  };
  std::vector<ScanJob> jobs(scan_files.size());
  auto run_job = [&](size_t i) {
    ScanJob& job = jobs[i];
    ++job.metrics.files_scanned;
    std::vector<format::Row> matched;
    job.status = ScanFileRows(
        info, where, options, delete_records, *scan_files[i], metadata_memory,
        required,
        [&](std::vector<format::Row> rows, uint64_t scanned) {
          // The scan already filtered column-at-a-time; just count.
          job.totals.rows_scanned += scanned;
          job.totals.rows_matched += rows.size();
          if (matched.empty()) {
            matched = std::move(rows);
          } else {
            matched.insert(matched.end(),
                           std::make_move_iterator(rows.begin()),
                           std::make_move_iterator(rows.end()));
          }
          return Status::OK();
        },
        &job.metrics);
    if (job.status.ok()) {
      job.status = sink->ConsumeFragment(i, std::move(matched));
    }
  };
  if (scan_pool_ != nullptr && jobs.size() > 1) {
    static Counter* parallel_jobs =
        MetricsRegistry::Global().GetCounter("table.select.parallel_jobs");
    parallel_jobs->Increment(jobs.size());
    Mutex barrier_mu{LockRank::kTableScanBarrier, "table.select.barrier"};
    CondVar done_cv;
    size_t remaining = jobs.size();
    for (size_t i = 0; i < jobs.size(); ++i) {
      scan_pool_->Submit([&, i]() {
        run_job(i);
        MutexLock done(&barrier_mu);
        --remaining;
        done_cv.NotifyAll();
      });
    }
    MutexLock wait(&barrier_mu);
    while (remaining > 0) done_cv.Wait(&barrier_mu);
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) run_job(i);
  }

  totals.fragments = jobs.size();
  // `m` accumulates across calls (plan_runner shares one capture), so the
  // registry counters get this call's delta, not the running totals.
  SelectMetrics delta;
  for (ScanJob& job : jobs) {
    SL_RETURN_NOT_OK(job.status);
    totals.rows_scanned += job.totals.rows_scanned;
    totals.rows_matched += job.totals.rows_matched;
    delta.files_scanned += job.metrics.files_scanned;
    delta.row_groups_scanned += job.metrics.row_groups_scanned;
    delta.row_groups_skipped += job.metrics.row_groups_skipped;
    delta.data_bytes_read += job.metrics.data_bytes_read;
    delta.bytes_to_compute += job.metrics.bytes_to_compute;
    delta.bytes_decoded += job.metrics.bytes_decoded;
    delta.columns_decoded += job.metrics.columns_decoded;
    delta.rows_materialized += job.metrics.rows_materialized;
    delta.dict_code_prunes += job.metrics.dict_code_prunes;
    m->peak_memory_bytes =
        std::max(m->peak_memory_bytes, job.metrics.peak_memory_bytes);
  }
  m->files_scanned += delta.files_scanned;
  m->row_groups_scanned += delta.row_groups_scanned;
  m->row_groups_skipped += delta.row_groups_skipped;
  m->data_bytes_read += delta.data_bytes_read;
  m->bytes_to_compute += delta.bytes_to_compute;
  m->bytes_decoded += delta.bytes_decoded;
  m->columns_decoded += delta.columns_decoded;
  m->rows_materialized += delta.rows_materialized;
  m->dict_code_prunes += delta.dict_code_prunes;
  static Counter* bytes_decoded =
      MetricsRegistry::Global().GetCounter("table.select.bytes_decoded");
  static Counter* columns_decoded =
      MetricsRegistry::Global().GetCounter("table.select.columns_decoded");
  static Counter* rows_materialized =
      MetricsRegistry::Global().GetCounter("table.select.rows_materialized");
  static Counter* dict_code_prunes =
      MetricsRegistry::Global().GetCounter("table.select.dict_code_prunes");
  bytes_decoded->Increment(delta.bytes_decoded);
  columns_decoded->Increment(delta.columns_decoded);
  rows_materialized->Increment(delta.rows_materialized);
  dict_code_prunes->Increment(delta.dict_code_prunes);
  return totals;
}

Result<std::vector<format::Row>> Table::ReadDataFileRows(
    const DataFileMeta& file) {
  CachedFileReader reader(objects_, block_cache_, file.path);
  SL_RETURN_NOT_OK(reader.Init());
  return reader.ReadAllRows();
}

Result<std::vector<ColumnFooterStats>> Table::AggregateFooterStats() {
  SL_ASSIGN_OR_RETURN(TableInfo info, Info());
  std::vector<ColumnFooterStats> out(info.schema.num_fields());
  if (info.current_snapshot_id == 0) return out;
  SL_ASSIGN_OR_RETURN(
      std::vector<DataFileMeta> files,
      ReplaySnapshot(info, info.current_snapshot_id, nullptr, nullptr));
  // Row-weighted avg_width merge: weight each chunk by its non-NULL rows.
  std::vector<double> width_sum(out.size(), 0.0);
  std::vector<uint64_t> width_rows(out.size(), 0);
  for (const DataFileMeta& file : files) {
    CachedFileReader reader(objects_, block_cache_, file.path);
    SL_RETURN_NOT_OK(reader.Init());
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      const format::RowGroupMeta& group = reader.row_group(g);
      for (size_t c = 0; c < group.columns.size() && c < out.size(); ++c) {
        out[c].rows += group.num_rows;
        const format::ColumnStats& s = group.columns[c].stats;
        if (!s.has_extended) continue;
        out[c].null_count += s.null_count;
        out[c].ndv += s.ndv;
        uint64_t non_null = group.num_rows - s.null_count;
        width_sum[c] += s.avg_width * static_cast<double>(non_null);
        width_rows[c] += non_null;
      }
    }
  }
  for (size_t c = 0; c < out.size(); ++c) {
    // Per-chunk exact NDVs summed over-count values shared across chunks;
    // cap at the non-NULL row count to keep the upper-bound contract.
    out[c].ndv = std::min(out[c].ndv, out[c].rows - out[c].null_count);
    if (width_rows[c] > 0) {
      out[c].avg_width = width_sum[c] / static_cast<double>(width_rows[c]);
    }
  }
  return out;
}

std::map<std::string, uint64_t> Table::PartitionAccessCounts() const {
  MutexLock lock(&access_mu_);
  return partition_access_;
}

Result<std::vector<DataFileMeta>> Table::LiveFiles(uint64_t snapshot_id) {
  SL_ASSIGN_OR_RETURN(TableInfo info, Info());
  uint64_t id = snapshot_id == 0 ? info.current_snapshot_id : snapshot_id;
  return ReplaySnapshot(info, id, nullptr, nullptr);
}

Result<uint64_t> Table::Delete(const query::Conjunction& where) {
  SL_ASSIGN_OR_RETURN(TableInfo info, Info());
  std::vector<DeleteRecord> prior_deletes;
  SL_ASSIGN_OR_RETURN(
      std::vector<DataFileMeta> files,
      ReplaySnapshot(info, info.current_snapshot_id, nullptr, nullptr,
                     &prior_deletes));

  // Split candidates: fully-covered partitions drop by metadata only; the
  // rest need the rewrite (copy-on-write) or delete-predicate
  // (merge-on-read) path.
  CommitRequest metadata_only;
  metadata_only.base_snapshot_id = info.current_snapshot_id;
  metadata_only.is_rewrite = true;
  uint64_t deleted_rows = 0;
  std::vector<DataFileMeta> touched;
  for (const DataFileMeta& file : files) {
    if (!FileMayMatch(info, file, where)) continue;
    if (PartitionFullyCovered(info, file.partition, where)) {
      metadata_only.removed.push_back(file);
      deleted_rows += file.record_count;
    } else {
      touched.push_back(file);
    }
  }
  if (!metadata_only.removed.empty()) {
    // Files stay on disk for time travel; ExpireSnapshots reclaims them.
    SL_RETURN_NOT_OK(CommitChanges(metadata_only));
  }
  if (touched.empty()) return deleted_rows;

  if (options_.delete_mode == DeleteMode::kMergeOnRead) {
    // Count the rows the predicate will mask (a read-only scan), then
    // record the delete; no data files are rewritten.
    for (const DataFileMeta& file : touched) {
      SL_ASSIGN_OR_RETURN(std::vector<format::Row> rows,
                          ReadDataFileRows(file));
      for (const format::Row& row : rows) {
        if (where.Matches(info.schema, row) &&
            !RowMasked(prior_deletes, file.added_seq, info.schema, row)) {
          ++deleted_rows;
        }
      }
    }
    CommitRequest request;
    request.base_snapshot_id = info.current_snapshot_id;
    request.delete_predicates.push_back(where);
    SL_RETURN_NOT_OK(CommitChanges(request));
    return deleted_rows;
  }

  SL_ASSIGN_OR_RETURN(uint64_t rewritten,
                      RewriteMatching(where, /*keep_rewritten=*/false, "",
                                      nullptr));
  return deleted_rows + rewritten;
}

Result<uint64_t> Table::Update(const query::Conjunction& where,
                               const std::string& column,
                               const format::Value& value) {
  return RewriteMatching(where, /*keep_rewritten=*/true, column, &value);
}

Result<uint64_t> Table::RewriteMatching(const query::Conjunction& where,
                                        bool keep_rewritten,
                                        const std::string& set_column,
                                        const format::Value* set_value) {
  SL_ASSIGN_OR_RETURN(TableInfo info, Info());
  int set_col = -1;
  if (set_value != nullptr) {
    set_col = info.schema.FieldIndex(set_column);
    if (set_col < 0) {
      return Status::InvalidArgument("unknown column " + set_column);
    }
    if (format::TypeOf(*set_value) != info.schema.field(set_col).type) {
      return Status::InvalidArgument("SET value type mismatch");
    }
  }
  std::vector<DeleteRecord> prior_deletes;
  SL_ASSIGN_OR_RETURN(
      std::vector<DataFileMeta> files,
      ReplaySnapshot(info, info.current_snapshot_id, nullptr, nullptr,
                     &prior_deletes));
  CommitRequest request;
  request.base_snapshot_id = info.current_snapshot_id;
  request.is_rewrite = true;
  uint64_t affected = 0;
  Status s = Status::OK();
  for (const DataFileMeta& file : files) {
    if (!FileMayMatch(info, file, where)) continue;
    auto rows_or = ReadDataFileRows(file);
    if (!rows_or.ok()) {
      s = rows_or.status();
      break;
    }
    std::vector<format::Row> rows = std::move(*rows_or);
    std::vector<format::Row> rewritten;
    rewritten.reserve(rows.size());
    uint64_t matched = 0;
    uint64_t masked = 0;
    for (format::Row& row : rows) {
      // Rewriting physically applies outstanding merge-on-read deletes:
      // masked rows are dropped, never resurrected.
      if (RowMasked(prior_deletes, file.added_seq, info.schema, row)) {
        ++masked;
        continue;
      }
      if (where.Matches(info.schema, row)) {
        ++matched;
        if (keep_rewritten) {
          row.fields[set_col] = *set_value;
          rewritten.push_back(std::move(row));
        }
      } else {
        rewritten.push_back(std::move(row));
      }
    }
    if (matched == 0 && masked == 0) {
      continue;  // stats were conservative; file untouched
    }
    affected += matched;
    request.removed.push_back(file);
    if (!rewritten.empty()) {
      auto meta = WriteDataFile(info, file.partition, rewritten);
      if (!meta.ok()) {
        s = meta.status();
        break;
      }
      request.added.push_back(std::move(*meta));
    }
  }
  if (s.ok() && request.removed.empty()) return affected;
  // Replaced files stay on disk for time travel until snapshot expiration.
  if (s.ok()) s = CommitChanges(request);
  if (!s.ok()) {
    // The replacement files never became visible; reclaim them.
    for (const DataFileMeta& f : request.added) {
      objects_->Delete(f.path).LogIgnored("rewrite rollback");
    }
    return s;
  }
  return affected;
}

Result<CompactionResult> Table::CompactPartition(const std::string& partition,
                                                 uint64_t base_snapshot_id) {
  SL_ASSIGN_OR_RETURN(TableInfo info, Info());
  uint64_t base = base_snapshot_id == 0 ? info.current_snapshot_id
                                        : base_snapshot_id;
  std::vector<DeleteRecord> prior_deletes;
  SL_ASSIGN_OR_RETURN(std::vector<DataFileMeta> files,
                      ReplaySnapshot(info, base, nullptr, nullptr,
                                     &prior_deletes));

  // Binpack: gather the partition's small files, largest first, into bins
  // of ~target_file_bytes.
  std::vector<DataFileMeta> small;
  for (const DataFileMeta& file : files) {
    if (file.partition == partition &&
        file.file_bytes < options_.target_file_bytes) {
      small.push_back(file);
    }
  }
  CompactionResult result;
  result.files_before = small.size();
  if (small.size() < 2) {
    result.files_after = small.size();
    return result;  // nothing to gain
  }
  std::sort(small.begin(), small.end(),
            [](const DataFileMeta& a, const DataFileMeta& b) {
              return a.file_bytes > b.file_bytes;
            });

  CommitRequest request;
  request.base_snapshot_id = base;
  request.is_rewrite = true;
  std::vector<format::Row> bin_rows;
  uint64_t bin_bytes = 0;
  auto flush_bin = [&]() -> Status {
    if (bin_rows.empty()) return Status::OK();
    SL_ASSIGN_OR_RETURN(DataFileMeta meta,
                        WriteDataFile(info, partition, bin_rows));
    request.added.push_back(std::move(meta));
    bin_rows.clear();
    bin_bytes = 0;
    return Status::OK();
  };
  Status s = Status::OK();
  for (const DataFileMeta& file : small) {
    auto rows_or = ReadDataFileRows(file);
    if (!rows_or.ok()) {
      s = rows_or.status();
      break;
    }
    result.bytes_rewritten += file.file_bytes;
    for (format::Row& row : *rows_or) {
      // Compaction physically applies outstanding merge-on-read deletes.
      if (RowMasked(prior_deletes, file.added_seq, info.schema, row)) {
        continue;
      }
      bin_rows.push_back(std::move(row));
    }
    bin_bytes += file.file_bytes;
    request.removed.push_back(file);
    if (bin_bytes >= options_.target_file_bytes) {
      s = flush_bin();
      if (!s.ok()) break;
    }
  }
  if (s.ok()) s = flush_bin();
  result.files_after = request.added.size();

  if (s.ok()) s = CommitChanges(request);
  if (!s.ok()) {
    // Roll back the bins we wrote; the commit never became visible.
    // Best-effort: a leaked orphan file is preferable to masking the
    // original error.
    for (const DataFileMeta& f : request.added) {
      objects_->Delete(f.path).LogIgnored("compaction rollback");
    }
    return s;
  }
  // Merged-away files stay for time travel until snapshot expiration.
  return result;
}

Result<size_t> Table::RewriteManifest() {
  MutexLock lock(&commit_mu_);
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name_));
  if (info.soft_deleted) return Status::NotFound("table dropped");
  if (info.current_snapshot_id == 0) return size_t{0};
  SL_ASSIGN_OR_RETURN(
      SnapshotMeta head,
      meta_->GetSnapshot(info.path, info.current_snapshot_id));
  if (head.commit_seqs.size() <= 1) return size_t{0};

  // Replay the chain into the live file set and write it as one commit.
  // Files keep their original added_seq and outstanding merge-on-read
  // deletes carry over with their original sequences, so read-time
  // masking is unchanged.
  std::vector<DeleteRecord> outstanding;
  SL_ASSIGN_OR_RETURN(std::vector<DataFileMeta> files,
                      ReplaySnapshot(info, info.current_snapshot_id, nullptr,
                                     nullptr, &outstanding));
  size_t squashed = head.commit_seqs.size();

  CommitFile consolidated;
  consolidated.commit_seq = info.next_commit_seq++;
  consolidated.timestamp = static_cast<int64_t>(clock_->NowSeconds());
  consolidated.added = files;
  consolidated.deletes = std::move(outstanding);
  SL_RETURN_NOT_OK(meta_->PutCommit(info.path, consolidated));

  SnapshotMeta snap = head;
  snap.snapshot_id = info.next_snapshot_id++;
  snap.timestamp = consolidated.timestamp;
  snap.commit_seqs = {consolidated.commit_seq};
  snap.added_files = 0;
  snap.removed_files = 0;
  snap.added_rows = 0;
  snap.removed_rows = 0;
  Status s = meta_->PutSnapshot(info.path, snap);
  bool snap_written = s.ok();
  if (s.ok()) {
    info.current_snapshot_id = snap.snapshot_id;
    info.modified_at = snap.timestamp;
    info.snapshot_log.emplace_back(snap.snapshot_id, snap.timestamp);
    s = meta_->PutTableInfo(info);
  }
  if (!s.ok()) {
    // The catalog still points at the old head; retract the consolidated
    // records so they never linger half-committed.
    if (snap_written) {
      meta_->DeleteSnapshot(info.path, snap.snapshot_id)
          .LogIgnored("manifest rollback");
    }
    meta_->DeleteCommit(info.path, consolidated.commit_seq)
        .LogIgnored("manifest rollback");
    return s;
  }
  return squashed;
}

Status Table::ExpireSnapshots(int64_t before_timestamp) {
  MutexLock lock(&commit_mu_);
  SL_ASSIGN_OR_RETURN(TableInfo info, meta_->GetTableInfo(name_));
  std::vector<std::pair<uint64_t, int64_t>> kept;
  std::set<uint64_t> kept_commits;
  std::vector<uint64_t> expired;
  std::set<uint64_t> expired_commits;
  for (const auto& [id, ts] : info.snapshot_log) {
    // The current snapshot never expires.
    bool expires = ts < before_timestamp && id != info.current_snapshot_id;
    auto snap = meta_->GetSnapshot(info.path, id);
    if (expires) {
      expired.push_back(id);
      if (snap.ok()) {
        expired_commits.insert(snap->commit_seqs.begin(),
                               snap->commit_seqs.end());
      }
    } else {
      kept.emplace_back(id, ts);
      if (snap.ok()) {
        kept_commits.insert(snap->commit_seqs.begin(),
                            snap->commit_seqs.end());
      }
    }
  }
  for (uint64_t id : expired) {
    SL_RETURN_NOT_OK(meta_->DeleteSnapshot(info.path, id));
  }
  // Commits only referenced by expired snapshots go too.
  for (uint64_t seq : expired_commits) {
    if (!kept_commits.count(seq)) {
      SL_RETURN_NOT_OK(meta_->DeleteCommit(info.path, seq));
    }
  }
  info.snapshot_log = std::move(kept);
  SL_RETURN_NOT_OK(meta_->PutTableInfo(info));

  // Physical GC: delete data files no retained snapshot references
  // (rewrites keep their replaced files on disk for time travel; this is
  // where that space comes back).
  std::set<std::string> referenced;
  for (const auto& [id, ts] : info.snapshot_log) {
    auto files = ReplaySnapshot(info, id, nullptr, nullptr);
    if (!files.ok()) continue;
    for (const DataFileMeta& f : *files) referenced.insert(f.path);
  }
  for (const std::string& path : objects_->List(info.path + "/data/")) {
    if (path.ends_with("/.dir")) continue;  // directory marker
    if (!referenced.count(path)) {
      SL_RETURN_NOT_OK(objects_->Delete(path));
      // The file is physically gone; no snapshot can read it again.
      if (block_cache_ != nullptr) block_cache_->InvalidateFile(path);
    }
  }
  return Status::OK();
}

}  // namespace streamlake::table
