#include "table/plan_runner.h"

#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "common/metrics.h"
#include "common/mutex.h"
#include "query/row_less.h"

namespace streamlake::table {

namespace {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Collects scan fragments delivered concurrently by pool jobs and hands
/// them back in deterministic file order. The lock ranks below the scan
/// barrier so a job appends its fragment while the query thread waits.
class FragmentSink : public RowSink {
 public:
  Status ConsumeFragment(size_t fragment,
                         std::vector<format::Row> rows) override {
    MutexLock lock(&mu_);
    fragments_[fragment] = std::move(rows);
    return Status::OK();
  }

  /// Drain all fragments ordered by index (call after the scan barrier —
  /// no jobs are appending anymore).
  std::vector<std::vector<format::Row>> TakeOrdered() {
    MutexLock lock(&mu_);
    std::vector<std::vector<format::Row>> ordered;
    ordered.reserve(fragments_.size());
    for (auto& [index, rows] : fragments_) {
      ordered.push_back(std::move(rows));
    }
    fragments_.clear();
    return ordered;
  }

 private:
  Mutex mu_{LockRank::kQueryFragmentSink, "query.fragment.sink"};
  std::map<size_t, std::vector<format::Row>> fragments_ GUARDED_BY(mu_);
};

/// Applies a pure row transform (the join chain + residual filters) to
/// each probe fragment on the delivering pool thread, then forwards the
/// joined fragment downstream. The transform only reads const build maps,
/// so fragments run concurrently without locks.
class JoinProbeSink : public RowSink {
 public:
  using Transform =
      std::function<Result<std::vector<format::Row>>(std::vector<format::Row>)>;

  JoinProbeSink(Transform transform, FragmentSink* out)
      : transform_(std::move(transform)), out_(out) {}

  Status ConsumeFragment(size_t fragment,
                         std::vector<format::Row> rows) override {
    Result<std::vector<format::Row>> joined = transform_(std::move(rows));
    SL_RETURN_NOT_OK(joined.status());
    return out_->ConsumeFragment(fragment, std::move(*joined));
  }

 private:
  Transform transform_;
  FragmentSink* out_;
};

/// The root-to-source operator chain of a plan:
/// SortLimit? -> (Aggregate | Project)? -> Filter* -> source.
struct PlanShape {
  const query::SortLimitNode* sort = nullptr;
  const query::AggregateNode* aggregate = nullptr;
  const query::ProjectNode* project = nullptr;
  std::vector<const query::FilterNode*> post_filters;
  const query::PlanNode* source = nullptr;
};

Result<PlanShape> WalkShape(const query::PlanNode& root) {
  PlanShape shape;
  const query::PlanNode* cur = &root;
  auto descend = [&]() -> Status {
    if (cur->children.size() != 1) {
      return Status::InvalidArgument("plan operator needs exactly one child");
    }
    cur = cur->children[0].get();
    return Status::OK();
  };
  if (cur->kind == query::PlanNode::Kind::kSortLimit) {
    shape.sort = static_cast<const query::SortLimitNode*>(cur);
    SL_RETURN_NOT_OK(descend());
  }
  if (cur->kind == query::PlanNode::Kind::kAggregate) {
    shape.aggregate = static_cast<const query::AggregateNode*>(cur);
    SL_RETURN_NOT_OK(descend());
  } else if (cur->kind == query::PlanNode::Kind::kProject) {
    shape.project = static_cast<const query::ProjectNode*>(cur);
    SL_RETURN_NOT_OK(descend());
  }
  while (cur->kind == query::PlanNode::Kind::kFilter) {
    shape.post_filters.push_back(static_cast<const query::FilterNode*>(cur));
    SL_RETURN_NOT_OK(descend());
  }
  if (cur->kind != query::PlanNode::Kind::kScan &&
      cur->kind != query::PlanNode::Kind::kHashJoin) {
    return Status::InvalidArgument("unsupported plan shape");
  }
  shape.source = cur;
  return shape;
}

/// The final-stage QuerySpec of a plan (everything above the join/scan
/// source; the scan filters were already pushed down).
query::QuerySpec FinalSpec(const PlanShape& shape) {
  query::QuerySpec spec;
  if (shape.aggregate != nullptr) {
    spec.group_by = shape.aggregate->group_by;
    spec.aggregates = shape.aggregate->aggregates;
  } else if (shape.project != nullptr) {
    spec.projection = shape.project->columns;
  }
  if (shape.sort != nullptr) {
    spec.order_by = shape.sort->order_by;
    spec.order_descending = shape.sort->order_descending;
    spec.limit = shape.sort->limit;
  }
  return spec;
}

}  // namespace

PlanRunner::PlanRunner(std::vector<PinnedTable> tables, SelectOptions options)
    : tables_(std::move(tables)), options_(options) {}

SelectOptions PlanRunner::OptionsFor(size_t table_index) const {
  SelectOptions options = options_;
  if (tables_[table_index].snapshot_id != 0) {
    options.snapshot_id = tables_[table_index].snapshot_id;
    options.as_of_timestamp = -1;
  }
  return options;
}

Result<query::QueryResult> PlanRunner::Run(const query::PlanNode& root,
                                           SelectMetrics* metrics) {
  SelectMetrics local_metrics;
  SelectMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  SL_ASSIGN_OR_RETURN(PlanShape shape, WalkShape(root));

  if (shape.source->kind == query::PlanNode::Kind::kScan) {
    // Single-scan plan: collapse into Table::Select — its pipeline IS
    // scan -> filter -> (aggregate | project) -> sort/limit, fragment-
    // merged exactly as before the plan-tree refactor.
    const auto& scan = static_cast<const query::ScanNode&>(*shape.source);
    if (scan.table_index >= tables_.size()) {
      return Status::InvalidArgument("scan table index out of range");
    }
    query::QuerySpec spec = FinalSpec(shape);
    spec.where = scan.filter;
    for (const query::FilterNode* filter : shape.post_filters) {
      for (const query::Predicate& p : filter->filter.predicates()) {
        spec.where.Add(p);
      }
    }
    return tables_[scan.table_index].table->Select(
        spec, OptionsFor(scan.table_index), metrics);
  }

  // Hash-join pipeline. Flatten the left-deep join chain; application
  // order is bottom-up (nearest the probe scan first).
  std::vector<const query::HashJoinNode*> joins;
  const query::PlanNode* cur = shape.source;
  while (cur->kind == query::PlanNode::Kind::kHashJoin) {
    joins.insert(joins.begin(),
                 static_cast<const query::HashJoinNode*>(cur));
    if (cur->children.size() != 2) {
      return Status::InvalidArgument("hash join needs two children");
    }
    cur = cur->children[0].get();
  }
  std::vector<const query::FilterNode*> probe_filters;
  while (cur->kind == query::PlanNode::Kind::kFilter) {
    probe_filters.insert(
        probe_filters.begin(),
        static_cast<const query::FilterNode*>(cur));
    if (cur->children.size() != 1) {
      return Status::InvalidArgument("plan operator needs exactly one child");
    }
    cur = cur->children[0].get();
  }
  if (cur->kind != query::PlanNode::Kind::kScan) {
    return Status::InvalidArgument("join probe side must end in a scan");
  }
  const auto& probe_scan = static_cast<const query::ScanNode&>(*cur);
  if (probe_scan.table_index >= tables_.size()) {
    return Status::InvalidArgument("scan table index out of range");
  }
  const format::Schema& probe_schema = probe_scan.output_schema;
  const format::Schema& joined_schema = shape.source->output_schema;

  // Joined-row layout: probe columns first, then each non-semi build
  // table's columns in join order (semi joins do not extend the row).
  const size_t probe_fields = probe_schema.num_fields();
  std::vector<const query::ScanNode*> build_scans(joins.size(), nullptr);
  std::vector<size_t> build_offset(joins.size(), 0);
  {
    size_t width = probe_fields;
    for (size_t j = 0; j < joins.size(); ++j) {
      if (joins[j]->children[1]->kind != query::PlanNode::Kind::kScan) {
        return Status::InvalidArgument("join build side must be a scan");
      }
      build_scans[j] =
          static_cast<const query::ScanNode*>(joins[j]->children[1].get());
      if (build_scans[j]->table_index >= tables_.size()) {
        return Status::InvalidArgument("scan table index out of range");
      }
      build_offset[j] = width;
      if (joins[j]->join_kind != query::HashJoinNode::JoinKind::kSemi) {
        width += build_scans[j]->output_schema.num_fields();
      }
    }
  }

  // Late materialization: each scan decodes only the columns the pipeline
  // above it touches — join keys, probe/post filters, and the final
  // aggregate/projection inputs. A SELECT * plan (no aggregate, no
  // projection) needs every column of every table.
  query::QuerySpec final_spec = FinalSpec(shape);
  ColumnSelection probe_required = ColumnSelection::All();
  std::vector<ColumnSelection> build_required(joins.size(),
                                              ColumnSelection::All());
  if (!final_spec.aggregates.empty() || !final_spec.projection.empty()) {
    std::set<int> probe_cols;
    std::vector<std::set<int>> build_cols(joins.size());
    // Route a joined-schema column index to the scan that produces it.
    auto add_joined = [&](size_t idx) {
      if (idx < probe_fields) {
        probe_cols.insert(static_cast<int>(idx));
        return;
      }
      for (size_t j = 0; j < joins.size(); ++j) {
        if (joins[j]->join_kind == query::HashJoinNode::JoinKind::kSemi) {
          continue;
        }
        size_t fields = build_scans[j]->output_schema.num_fields();
        if (idx >= build_offset[j] && idx < build_offset[j] + fields) {
          build_cols[j].insert(static_cast<int>(idx - build_offset[j]));
          return;
        }
      }
    };
    auto add_joined_name = [&](const std::string& name) {
      int idx = joined_schema.FieldIndex(name);
      if (idx >= 0) add_joined(static_cast<size_t>(idx));
    };
    for (const std::string& c : final_spec.group_by) add_joined_name(c);
    for (const query::AggregateSpec& a : final_spec.aggregates) {
      if (!a.column.empty()) add_joined_name(a.column);
    }
    for (const std::string& c : final_spec.projection) add_joined_name(c);
    for (const query::FilterNode* f : shape.post_filters) {
      for (const query::Predicate& p : f->filter.predicates()) {
        add_joined_name(p.column);
      }
    }
    for (const query::FilterNode* f : probe_filters) {
      for (const query::Predicate& p : f->filter.predicates()) {
        int idx = probe_schema.FieldIndex(p.column);
        if (idx >= 0) probe_cols.insert(idx);
      }
    }
    for (size_t j = 0; j < joins.size(); ++j) {
      add_joined(static_cast<size_t>(joins[j]->probe_col));
      build_cols[j].insert(static_cast<int>(joins[j]->build_col));
    }
    probe_required = ColumnSelection::Of(
        std::vector<int>(probe_cols.begin(), probe_cols.end()));
    for (size_t j = 0; j < joins.size(); ++j) {
      build_required[j] = ColumnSelection::Of(
          std::vector<int>(build_cols[j].begin(), build_cols[j].end()));
    }
  }

  static Counter* build_rows_counter =
      MetricsRegistry::Global().GetCounter("query.join.build_rows");
  static Counter* probe_rows_counter =
      MetricsRegistry::Global().GetCounter("query.join.probe_rows");
  static Counter* build_ns_counter =
      MetricsRegistry::Global().GetCounter("query.join.build_ns");
  static Counter* probe_ns_counter =
      MetricsRegistry::Global().GetCounter("query.join.probe_ns");
  static Counter* scan_rows_counter =
      MetricsRegistry::Global().GetCounter("query.op.scan.rows");
  static Counter* join_rows_counter =
      MetricsRegistry::Global().GetCounter("query.op.join.rows");

  uint64_t total_scanned = 0;
  uint64_t total_matched = 0;

  // Build phase: each build table scans through the pool into an ordered
  // fragment sink; the key map itself is built serially in fragment order
  // so duplicate-key bucket order (hence inner-join output order) is
  // deterministic.
  using BuildMap =
      std::map<format::Value, std::vector<format::Row>, query::ValueLess>;
  std::vector<BuildMap> build_maps(joins.size());
  uint64_t build_start_ns = MonotonicNanos();
  uint64_t build_rows = 0;
  for (size_t j = 0; j < joins.size(); ++j) {
    const query::HashJoinNode& join = *joins[j];
    const query::ScanNode& build_scan = *build_scans[j];
    FragmentSink sink;
    SL_ASSIGN_OR_RETURN(
        ScanTotals totals,
        tables_[build_scan.table_index].table->ScanInto(
            build_scan.filter, OptionsFor(build_scan.table_index),
            build_required[j], &sink, m));
    total_scanned += totals.rows_scanned;
    total_matched += totals.rows_matched;
    build_rows += totals.rows_matched;
    for (std::vector<format::Row>& fragment : sink.TakeOrdered()) {
      for (format::Row& row : fragment) {
        format::Value key = row.fields[join.build_col];
        build_maps[j][std::move(key)].push_back(std::move(row));
      }
    }
  }
  build_ns_counter->Increment(MonotonicNanos() - build_start_ns);
  build_rows_counter->Increment(build_rows);

  // Probe phase: fragments stream through the join chain on the pool
  // threads (pure reads of the const build maps), collect in file order.
  auto transform = [&](std::vector<format::Row> rows)
      -> Result<std::vector<format::Row>> {
    for (const query::FilterNode* filter : probe_filters) {
      std::vector<format::Row> kept;
      kept.reserve(rows.size());
      for (format::Row& row : rows) {
        if (filter->filter.Matches(probe_schema, row)) {
          kept.push_back(std::move(row));
        }
      }
      rows = std::move(kept);
    }
    for (size_t j = 0; j < joins.size(); ++j) {
      const query::HashJoinNode& join = *joins[j];
      const BuildMap& map = build_maps[j];
      std::vector<format::Row> out;
      for (format::Row& row : rows) {
        auto it = map.find(row.fields[join.probe_col]);
        if (it == map.end()) continue;
        if (join.join_kind == query::HashJoinNode::JoinKind::kSemi) {
          out.push_back(std::move(row));
          continue;
        }
        for (const format::Row& build_row : it->second) {
          format::Row joined = row;
          joined.fields.insert(joined.fields.end(), build_row.fields.begin(),
                               build_row.fields.end());
          out.push_back(std::move(joined));
        }
      }
      rows = std::move(out);
    }
    for (const query::FilterNode* filter : shape.post_filters) {
      std::vector<format::Row> kept;
      kept.reserve(rows.size());
      for (format::Row& row : rows) {
        if (filter->filter.Matches(joined_schema, row)) {
          kept.push_back(std::move(row));
        }
      }
      rows = std::move(kept);
    }
    return rows;
  };

  FragmentSink joined_sink;
  JoinProbeSink probe_sink(transform, &joined_sink);
  uint64_t probe_start_ns = MonotonicNanos();
  SL_ASSIGN_OR_RETURN(
      ScanTotals probe_totals,
      tables_[probe_scan.table_index].table->ScanInto(
          probe_scan.filter, OptionsFor(probe_scan.table_index),
          probe_required, &probe_sink, m));
  probe_ns_counter->Increment(MonotonicNanos() - probe_start_ns);
  probe_rows_counter->Increment(probe_totals.rows_matched);
  total_scanned += probe_totals.rows_scanned;
  total_matched += probe_totals.rows_matched;
  scan_rows_counter->Increment(total_scanned);

  // Final stage: one executor over the joined fragments, consumed in
  // deterministic fragment order (serial — identical to a serial run).
  query::Executor executor(joined_schema, FinalSpec(shape));
  uint64_t joined_rows = 0;
  for (std::vector<format::Row>& fragment : joined_sink.TakeOrdered()) {
    joined_rows += fragment.size();
    SL_RETURN_NOT_OK(executor.Consume(fragment));
  }
  join_rows_counter->Increment(joined_rows);
  SL_ASSIGN_OR_RETURN(query::QueryResult result, executor.Finalize());
  // The executor saw joined rows; the query-level counters report what the
  // scans read and matched across every table of the query.
  result.rows_scanned = total_scanned;
  result.rows_matched = total_matched;
  return result;
}

}  // namespace streamlake::table
