#ifndef STREAMLAKE_STORAGE_REPAIR_H_
#define STREAMLAKE_STORAGE_REPAIR_H_

#include "storage/plog_store.h"

namespace streamlake::storage {

/// \brief Background data reconstruction (Section III: the storage pools
/// implement "garbage collection, data reconstruction, snapshot, ...").
///
/// When a disk or node fails, redundancy keeps the data readable but
/// degraded — one more failure could lose it. A repair pass rebuilds the
/// lost replicas/EC shards onto healthy disks, restoring full fault
/// tolerance. In OceanStor this rebuild is massively parallel across the
/// pool ("rapid data duplication and reconstruction"); here it is one
/// scan over the PLogs.
class RepairService {
 public:
  explicit RepairService(PlogStore* plogs) : plogs_(plogs) {}

  struct RunStats {
    uint64_t plogs_scanned = 0;
    uint64_t plogs_degraded = 0;
    uint64_t plogs_repaired = 0;
    uint64_t plogs_unrecoverable = 0;
  };

  /// Scan every PLog; repair the degraded ones.
  Result<RunStats> Run();

 private:
  PlogStore* plogs_;
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_REPAIR_H_
