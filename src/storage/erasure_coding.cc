#include "storage/erasure_coding.h"

#include "common/logging.h"
#include "storage/gf256.h"

namespace streamlake::storage {

namespace {

using Matrix = std::vector<std::vector<uint8_t>>;

Matrix MultiplyMatrix(const Matrix& a, const Matrix& b) {
  size_t rows = a.size();
  size_t inner = b.size();
  size_t cols = b[0].size();
  Matrix out(rows, std::vector<uint8_t>(cols, 0));
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      uint8_t acc = 0;
      for (size_t x = 0; x < inner; ++x) {
        acc = Gf256::Add(acc, Gf256::Mul(a[i][x], b[x][j]));
      }
      out[i][j] = acc;
    }
  }
  return out;
}

}  // namespace

Result<Matrix> InvertMatrix(Matrix a) {
  const size_t n = a.size();
  Matrix inv(n, std::vector<uint8_t>(n, 0));
  for (size_t i = 0; i < n; ++i) inv[i][i] = 1;

  for (size_t col = 0; col < n; ++col) {
    // Find a pivot row.
    size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) return Status::InvalidArgument("singular matrix");
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    // Scale pivot row to 1.
    uint8_t scale = Gf256::Inv(a[col][col]);
    for (size_t j = 0; j < n; ++j) {
      a[col][j] = Gf256::Mul(a[col][j], scale);
      inv[col][j] = Gf256::Mul(inv[col][j], scale);
    }
    // Eliminate the column from all other rows.
    for (size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      uint8_t factor = a[row][col];
      for (size_t j = 0; j < n; ++j) {
        a[row][j] = Gf256::Sub(a[row][j], Gf256::Mul(factor, a[col][j]));
        inv[row][j] = Gf256::Sub(inv[row][j], Gf256::Mul(factor, inv[col][j]));
      }
    }
  }
  return inv;
}

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  SL_CHECK(k >= 1 && m >= 0 && k + m <= 255);
  // Vandermonde V[i][j] = i^j over distinct points 0..k+m-1; any k rows of
  // V are invertible. Normalize by V_top^{-1} to make the code systematic
  // while preserving the any-k-rows property.
  Matrix vandermonde(k + m, std::vector<uint8_t>(k, 0));
  for (int i = 0; i < k + m; ++i) {
    for (int j = 0; j < k; ++j) {
      vandermonde[i][j] = Gf256::Pow(static_cast<uint8_t>(i), j);
    }
  }
  Matrix top(vandermonde.begin(), vandermonde.begin() + k);
  auto top_inv = InvertMatrix(std::move(top));
  SL_CHECK(top_inv.ok());
  generator_ = MultiplyMatrix(vandermonde, *top_inv);
}

std::vector<Bytes> ReedSolomon::Encode(ByteView payload) const {
  const size_t shard_size = (payload.size() + k_ - 1) / k_;
  std::vector<Bytes> shards(k_ + m_);
  // Data shards: zero-padded split (systematic rows are the identity).
  for (int i = 0; i < k_; ++i) {
    shards[i].assign(shard_size, 0);
    size_t begin = i * shard_size;
    if (begin < payload.size()) {
      size_t len = std::min(shard_size, payload.size() - begin);
      std::memcpy(shards[i].data(), payload.data() + begin, len);
    }
  }
  // Parity shards. A per-coefficient 256-entry product table turns the
  // inner loop into one lookup + XOR per byte.
  uint8_t mul_table[256];
  for (int p = 0; p < m_; ++p) {
    const std::vector<uint8_t>& row = generator_[k_ + p];
    Bytes& parity = shards[k_ + p];
    parity.assign(shard_size, 0);
    for (int d = 0; d < k_; ++d) {
      uint8_t coeff = row[d];
      if (coeff == 0) continue;
      for (int v = 0; v < 256; ++v) {
        mul_table[v] = Gf256::Mul(coeff, static_cast<uint8_t>(v));
      }
      const Bytes& data = shards[d];
      for (size_t b = 0; b < shard_size; ++b) {
        parity[b] ^= mul_table[data[b]];
      }
    }
  }
  return shards;
}

Result<Bytes> ReedSolomon::Decode(
    const std::vector<std::optional<Bytes>>& shards,
    size_t payload_size) const {
  if (shards.size() != static_cast<size_t>(k_ + m_)) {
    return Status::InvalidArgument("wrong shard count");
  }
  // Collect the first k available shards.
  std::vector<int> present;
  size_t shard_size = 0;
  for (int i = 0; i < k_ + m_ && static_cast<int>(present.size()) < k_; ++i) {
    if (shards[i].has_value()) {
      if (present.empty()) {
        shard_size = shards[i]->size();
      } else if (shards[i]->size() != shard_size) {
        return Status::InvalidArgument("shard size mismatch");
      }
      present.push_back(i);
    }
  }
  if (static_cast<int>(present.size()) < k_) {
    return Status::Corruption("too many shards lost to reconstruct");
  }
  if (shard_size * k_ < payload_size) {
    return Status::InvalidArgument("payload size too large for shards");
  }

  // Fast path: all data shards survive.
  bool all_data = true;
  for (int i = 0; i < k_; ++i) {
    if (!shards[i].has_value()) {
      all_data = false;
      break;
    }
  }
  std::vector<Bytes> data(k_);
  if (all_data) {
    for (int i = 0; i < k_; ++i) data[i] = *shards[i];
  } else {
    // Solve: [generator rows of present shards] * data = present shards.
    Matrix sub(k_, std::vector<uint8_t>(k_));
    for (int r = 0; r < k_; ++r) sub[r] = generator_[present[r]];
    SL_ASSIGN_OR_RETURN(Matrix inv, InvertMatrix(std::move(sub)));
    uint8_t mul_table[256];
    for (int d = 0; d < k_; ++d) {
      data[d].assign(shard_size, 0);
      for (int r = 0; r < k_; ++r) {
        uint8_t coeff = inv[d][r];
        if (coeff == 0) continue;
        for (int v = 0; v < 256; ++v) {
          mul_table[v] = Gf256::Mul(coeff, static_cast<uint8_t>(v));
        }
        const Bytes& src = *shards[present[r]];
        for (size_t b = 0; b < shard_size; ++b) {
          data[d][b] ^= mul_table[src[b]];
        }
      }
    }
  }

  Bytes payload;
  payload.reserve(payload_size);
  for (int i = 0; i < k_ && payload.size() < payload_size; ++i) {
    size_t take = std::min(shard_size, payload_size - payload.size());
    payload.insert(payload.end(), data[i].begin(), data[i].begin() + take);
  }
  return payload;
}

}  // namespace streamlake::storage
