#ifndef STREAMLAKE_STORAGE_STORAGE_POOL_H_
#define STREAMLAKE_STORAGE_STORAGE_POOL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "storage/block_device.h"

namespace streamlake::storage {

/// A contiguous extent allocated on one disk.
struct Extent {
  BlockDevice* device = nullptr;
  uint64_t offset = 0;
  uint64_t size = 0;
};

/// \brief One media tier of the store layer (the SSD pool or the HDD pool,
/// Section III). Owns disks across cluster nodes and hands out extents.
///
/// "The physical storage space on the disks in the storage cluster is
/// divided into slices, which are then organized as logical units across
/// disks in various servers to ensure data redundancy and load balancing."
class StoragePool {
 public:
  StoragePool(std::string name, sim::MediaType media, sim::SimClock* clock);

  /// Add one disk on `node_id`. Returns the device id.
  uint32_t AddDevice(uint32_t node_id, uint64_t capacity_bytes);

  /// Convenience: `nodes` nodes x `disks_per_node` disks.
  void AddCluster(uint32_t nodes, uint32_t disks_per_node,
                  uint64_t capacity_per_disk);

  /// Allocate `count` extents of `size` bytes each. When `distinct_nodes`
  /// is set, no two extents share a node (so redundancy survives node
  /// loss); otherwise they avoid sharing a disk. Allocation rotates across
  /// devices for load balance.
  Result<std::vector<Extent>> AllocateExtents(int count, uint64_t size,
                                              bool distinct_nodes);

  /// Return an extent's space to the pool.
  void FreeExtent(const Extent& extent);

  const std::string& name() const { return name_; }
  sim::MediaType media() const { return media_; }
  size_t num_devices() const { return devices_.size(); }
  BlockDevice* device(size_t i) { return devices_[i].get(); }

  uint64_t TotalCapacity() const;
  uint64_t AllocatedBytes() const;

  /// Fail / recover every disk on one node (fault injection).
  void SetNodeFailed(uint32_t node_id, bool failed);

  /// Aggregate device I/O counters across the pool.
  sim::DeviceStats AggregateStats() const;

 private:
  struct DeviceState {
    uint64_t next_offset = 0;               // bump allocator frontier
    std::vector<std::pair<uint64_t, uint64_t>> free_list;  // (offset, size)
  };

  /// Try to carve `size` bytes from device `idx`; returns false when full.
  bool TryAllocate(size_t idx, uint64_t size, Extent* out) REQUIRES(mu_);

  std::string name_;
  sim::MediaType media_;
  sim::SimClock* clock_;
  // Per-tier registry metrics (`storage.pool.<name>.*`); pools sharing a
  // name (e.g. every test's "ssd") aggregate into the same counters.
  Counter* alloc_ops_;
  Counter* alloc_bytes_;
  Counter* freed_bytes_;
  Gauge* allocated_gauge_;
  Gauge* tier_read_bytes_;
  Gauge* tier_write_bytes_;
  std::vector<std::unique_ptr<BlockDevice>> devices_;
  std::vector<DeviceState> states_ GUARDED_BY(mu_);
  mutable Mutex mu_{LockRank::kStoragePool, "storage.pool"};
  size_t rr_cursor_ GUARDED_BY(mu_) = 0;  // round-robin start
  uint64_t allocated_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_STORAGE_POOL_H_
