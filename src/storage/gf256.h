#ifndef STREAMLAKE_STORAGE_GF256_H_
#define STREAMLAKE_STORAGE_GF256_H_

#include <cstdint>

namespace streamlake::storage {

/// Arithmetic over GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11B).
/// Table-driven; backs the Reed–Solomon erasure code.
class Gf256 {
 public:
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Mul(uint8_t a, uint8_t b);
  /// Multiplicative inverse; b must be non-zero.
  static uint8_t Inv(uint8_t b);
  static uint8_t Div(uint8_t a, uint8_t b) { return Mul(a, Inv(b)); }
  /// a^n for n >= 0.
  static uint8_t Pow(uint8_t a, unsigned n);
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_GF256_H_
