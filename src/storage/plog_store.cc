#include "storage/plog_store.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/metrics.h"

namespace streamlake::storage {

PlogStore::PlogStore(StoragePool* pool, PlogStoreConfig config,
                     sim::SimClock* clock)
    : pool_(pool), config_(std::move(config)), clock_(clock) {
  uint32_t stripes = config_.num_stripes;
  if (stripes == 0) stripes = 1;
  if (stripes > config_.num_shards) stripes = config_.num_shards;
  if (stripes == 0) stripes = 1;  // num_shards == 0: one empty stripe
  stripes_.reserve(stripes);
  for (uint32_t i = 0; i < stripes; ++i) {
    // Stripe i owns shards {i, i + stripes, i + 2*stripes, ...}.
    size_t shard_count = config_.num_shards / stripes +
                         (i < config_.num_shards % stripes ? 1 : 0);
    stripes_.push_back(std::make_unique<Stripe>(i, shard_count));
  }
}

uint32_t PlogStore::ShardOf(ByteView key) const {
  return static_cast<uint32_t>(Hash64(key) % config_.num_shards);
}

Result<PlogAddress> PlogStore::Append(uint32_t shard, ByteView record) {
  if (shard >= config_.num_shards) {
    return Status::InvalidArgument("shard out of range");
  }
  static Counter* append_ops =
      MetricsRegistry::Global().GetCounter("storage.plog.append_ops");
  static Counter* append_bytes =
      MetricsRegistry::Global().GetCounter("storage.plog.append_bytes");
  static Counter* seals =
      MetricsRegistry::Global().GetCounter("storage.plog.seals");
  static Counter* stripe_contention =
      MetricsRegistry::Global().GetCounter("storage.plog.stripe_contention");
  Stripe& stripe = StripeFor(shard);
  bool contended = false;
  MutexLock lock(&stripe.mu, &contended);
  if (contended) stripe_contention->Increment();
  Shard& s = stripe.shards[LocalIndex(shard)];
  // Open the first PLog lazily; roll over when the active one fills up.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (s.chain.empty() || s.chain.back()->sealed()) {
      SL_ASSIGN_OR_RETURN(
          auto plog, Plog::Create(pool_, config_.plog, clock_->NowNanos()));
      s.chain.push_back(std::move(plog));
    }
    Plog* active = s.chain.back().get();
    auto offset = active->Append(record);
    if (offset.ok()) {
      active->set_last_append_ns(clock_->NowNanos());
      if (config_.io_delay_hook) config_.io_delay_hook(shard);
      append_ops->Increment();
      append_bytes->Increment(record.size());
      PlogAddress address;
      address.shard = shard;
      address.plog_index = static_cast<uint32_t>(s.chain.size() - 1);
      address.offset = *offset;
      return address;
    }
    if (!offset.status().IsResourceExhausted()) return offset.status();
    // Active PLog full: seal and retry on a fresh one.
    SL_RETURN_NOT_OK(active->Seal());
    seals->Increment();
  }
  return Status::ResourceExhausted("record larger than plog capacity");
}

Result<Bytes> PlogStore::Read(const PlogAddress& address) const {
  static Counter* read_ops =
      MetricsRegistry::Global().GetCounter("storage.plog.read_ops");
  static Counter* read_bytes =
      MetricsRegistry::Global().GetCounter("storage.plog.read_bytes");
  static Counter* stripe_contention =
      MetricsRegistry::Global().GetCounter("storage.plog.stripe_contention");
  if (address.shard >= config_.num_shards) {
    return Status::InvalidArgument("shard out of range");
  }
  Stripe& stripe = StripeFor(address.shard);
  bool contended = false;
  MutexLock lock(&stripe.mu, &contended);
  if (contended) stripe_contention->Increment();
  const Shard& s = stripe.shards[LocalIndex(address.shard)];
  if (address.plog_index >= s.chain.size()) {
    return Status::NotFound("plog index out of range");
  }
  auto data = s.chain[address.plog_index]->ReadRecord(address.offset);
  if (data.ok()) {
    if (config_.io_read_delay_hook) config_.io_read_delay_hook(address.shard);
    read_ops->Increment();
    read_bytes->Increment(data->size());
  }
  return data;
}

Status PlogStore::MarkGarbage(const PlogAddress& address,
                              uint64_t payload_bytes) {
  static Counter* stripe_contention =
      MetricsRegistry::Global().GetCounter("storage.plog.stripe_contention");
  if (address.shard >= config_.num_shards) {
    return Status::InvalidArgument("shard out of range");
  }
  Stripe& stripe = StripeFor(address.shard);
  bool contended = false;
  MutexLock lock(&stripe.mu, &contended);
  if (contended) stripe_contention->Increment();
  Shard& s = stripe.shards[LocalIndex(address.shard)];
  if (address.plog_index >= s.chain.size()) {
    return Status::NotFound("plog index out of range");
  }
  Plog* plog = s.chain[address.plog_index].get();
  plog->AddGarbage(payload_bytes);
  if (plog->sealed() && plog->live_bytes() == 0) {
    SL_RETURN_NOT_OK(plog->Free());
  }
  return Status::OK();
}

Status PlogStore::FlushAll() {
  // One stripe at a time (ascending stripe index): appends on other
  // stripes proceed while this stripe's tails flush — no store-wide
  // stop-the-world point.
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (Shard& s : stripe->shards) {
      if (!s.chain.empty() && !s.chain.back()->sealed()) {
        SL_RETURN_NOT_OK(s.chain.back()->Flush());
      }
    }
  }
  return Status::OK();
}

void PlogStore::ForEachPlog(
    const std::function<void(uint32_t, uint32_t, Plog*)>& fn) const {
  // Snapshot (shard, index, plog) triples stripe by stripe, then invoke
  // the callback with no lock held: Plog* pointers are stable for the
  // store's lifetime (chains only grow), and callbacks are free to
  // re-enter the store or take their own locks without rank inversions.
  struct Entry {
    uint32_t shard;
    uint32_t index;
    Plog* plog;
  };
  std::vector<Entry> snapshot;
  const uint32_t stripes = static_cast<uint32_t>(stripes_.size());
  for (uint32_t si = 0; si < stripes; ++si) {
    const Stripe& stripe = *stripes_[si];
    MutexLock lock(&stripe.mu);
    for (uint32_t local = 0; local < stripe.shards.size(); ++local) {
      const Shard& s = stripe.shards[local];
      uint32_t shard = local * stripes + si;
      for (uint32_t i = 0; i < s.chain.size(); ++i) {
        snapshot.push_back(Entry{shard, i, s.chain[i].get()});
      }
    }
  }
  // Visit in global shard order, matching the pre-striping iteration
  // order consumers (tiering, stats) observed.
  std::sort(snapshot.begin(), snapshot.end(),
            [](const Entry& a, const Entry& b) {
              return a.shard != b.shard ? a.shard < b.shard
                                        : a.index < b.index;
            });
  for (const Entry& e : snapshot) fn(e.shard, e.index, e.plog);
}

Status PlogStore::MigratePlog(uint32_t shard, uint32_t index,
                              StoragePool* target) {
  if (shard >= config_.num_shards) return Status::NotFound("no such plog");
  Plog* plog = nullptr;
  {
    Stripe& stripe = StripeFor(shard);
    MutexLock lock(&stripe.mu);
    const Shard& s = stripe.shards[LocalIndex(shard)];
    if (index >= s.chain.size()) {
      return Status::NotFound("no such plog");
    }
    plog = s.chain[index].get();
  }
  // Migration happens with no stripe lock held: only sealed (immutable)
  // plogs migrate, so concurrent appends to the same shard are unaffected.
  if (!plog->sealed()) {
    return Status::InvalidArgument("only sealed plogs migrate");
  }
  return plog->MigrateTo(target);
}

uint64_t PlogStore::TotalLogicalBytes() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (const Shard& s : stripe->shards) {
      for (const auto& plog : s.chain) total += plog->size();
    }
  }
  return total;
}

uint64_t PlogStore::TotalLiveBytes() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (const Shard& s : stripe->shards) {
      for (const auto& plog : s.chain) total += plog->live_bytes();
    }
  }
  return total;
}

uint64_t PlogStore::TotalLivePhysicalBytes() const {
  double amplification = config_.plog.redundancy.Amplification();
  return static_cast<uint64_t>(TotalLiveBytes() * amplification);
}

uint64_t PlogStore::TotalPlogs() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (const Shard& s : stripe->shards) total += s.chain.size();
  }
  return total;
}

}  // namespace streamlake::storage
