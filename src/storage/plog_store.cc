#include "storage/plog_store.h"

#include "common/hash.h"
#include "common/metrics.h"

namespace streamlake::storage {

PlogStore::PlogStore(StoragePool* pool, PlogStoreConfig config,
                     sim::SimClock* clock)
    : pool_(pool), config_(config), clock_(clock) {
  shards_.resize(config_.num_shards);
}

uint32_t PlogStore::ShardOf(ByteView key) const {
  return static_cast<uint32_t>(Hash64(key) % config_.num_shards);
}

Result<PlogAddress> PlogStore::Append(uint32_t shard, ByteView record) {
  if (shard >= config_.num_shards) {
    return Status::InvalidArgument("shard out of range");
  }
  static Counter* append_ops =
      MetricsRegistry::Global().GetCounter("storage.plog.append_ops");
  static Counter* append_bytes =
      MetricsRegistry::Global().GetCounter("storage.plog.append_bytes");
  static Counter* seals =
      MetricsRegistry::Global().GetCounter("storage.plog.seals");
  MutexLock lock(&mu_);
  Shard& s = shards_[shard];
  // Open the first PLog lazily; roll over when the active one fills up.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (s.chain.empty() || s.chain.back()->sealed()) {
      SL_ASSIGN_OR_RETURN(
          auto plog, Plog::Create(pool_, config_.plog, clock_->NowNanos()));
      s.chain.push_back(std::move(plog));
    }
    Plog* active = s.chain.back().get();
    auto offset = active->Append(record);
    if (offset.ok()) {
      active->set_last_append_ns(clock_->NowNanos());
      append_ops->Increment();
      append_bytes->Increment(record.size());
      PlogAddress address;
      address.shard = shard;
      address.plog_index = static_cast<uint32_t>(s.chain.size() - 1);
      address.offset = *offset;
      return address;
    }
    if (!offset.status().IsResourceExhausted()) return offset.status();
    // Active PLog full: seal and retry on a fresh one.
    SL_RETURN_NOT_OK(active->Seal());
    seals->Increment();
  }
  return Status::ResourceExhausted("record larger than plog capacity");
}

Result<Bytes> PlogStore::Read(const PlogAddress& address) const {
  static Counter* read_ops =
      MetricsRegistry::Global().GetCounter("storage.plog.read_ops");
  static Counter* read_bytes =
      MetricsRegistry::Global().GetCounter("storage.plog.read_bytes");
  MutexLock lock(&mu_);
  if (address.shard >= shards_.size()) {
    return Status::InvalidArgument("shard out of range");
  }
  const Shard& s = shards_[address.shard];
  if (address.plog_index >= s.chain.size()) {
    return Status::NotFound("plog index out of range");
  }
  auto data = s.chain[address.plog_index]->ReadRecord(address.offset);
  if (data.ok()) {
    read_ops->Increment();
    read_bytes->Increment(data->size());
  }
  return data;
}

Status PlogStore::MarkGarbage(const PlogAddress& address,
                              uint64_t payload_bytes) {
  MutexLock lock(&mu_);
  if (address.shard >= shards_.size()) {
    return Status::InvalidArgument("shard out of range");
  }
  Shard& s = shards_[address.shard];
  if (address.plog_index >= s.chain.size()) {
    return Status::NotFound("plog index out of range");
  }
  Plog* plog = s.chain[address.plog_index].get();
  plog->AddGarbage(payload_bytes);
  if (plog->sealed() && plog->live_bytes() == 0) {
    SL_RETURN_NOT_OK(plog->Free());
  }
  return Status::OK();
}

Status PlogStore::FlushAll() {
  MutexLock lock(&mu_);
  for (Shard& s : shards_) {
    if (!s.chain.empty() && !s.chain.back()->sealed()) {
      SL_RETURN_NOT_OK(s.chain.back()->Flush());
    }
  }
  return Status::OK();
}

void PlogStore::ForEachPlog(
    const std::function<void(uint32_t, uint32_t, Plog*)>& fn) const {
  MutexLock lock(&mu_);
  for (uint32_t shard = 0; shard < shards_.size(); ++shard) {
    const Shard& s = shards_[shard];
    for (uint32_t i = 0; i < s.chain.size(); ++i) {
      fn(shard, i, s.chain[i].get());
    }
  }
}

Status PlogStore::MigratePlog(uint32_t shard, uint32_t index,
                              StoragePool* target) {
  Plog* plog = nullptr;
  {
    MutexLock lock(&mu_);
    if (shard >= shards_.size() || index >= shards_[shard].chain.size()) {
      return Status::NotFound("no such plog");
    }
    plog = shards_[shard].chain[index].get();
  }
  if (!plog->sealed()) {
    return Status::InvalidArgument("only sealed plogs migrate");
  }
  return plog->MigrateTo(target);
}

uint64_t PlogStore::TotalLogicalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& plog : s.chain) total += plog->size();
  }
  return total;
}

uint64_t PlogStore::TotalLiveBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& plog : s.chain) total += plog->live_bytes();
  }
  return total;
}

uint64_t PlogStore::TotalLivePhysicalBytes() const {
  double amplification = config_.plog.redundancy.Amplification();
  return static_cast<uint64_t>(TotalLiveBytes() * amplification);
}

uint64_t PlogStore::TotalPlogs() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.chain.size();
  return total;
}

}  // namespace streamlake::storage
