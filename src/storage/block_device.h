#ifndef STREAMLAKE_STORAGE_BLOCK_DEVICE_H_
#define STREAMLAKE_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/result.h"
#include "sim/device_model.h"

namespace streamlake::storage {

/// One simulated disk: an in-memory byte array whose I/O is charged to a
/// sim::DeviceModel. Supports fault injection (a failed disk rejects all
/// I/O) for redundancy/recovery tests — this is the substitute for the
/// physical disks of an OceanStor node (see DESIGN.md).
class BlockDevice {
 public:
  /// `node_id` records which cluster node the disk belongs to so placement
  /// can spread redundancy across nodes.
  BlockDevice(uint32_t id, uint32_t node_id, uint64_t capacity_bytes,
              sim::MediaType media, sim::SimClock* clock);

  uint32_t id() const { return id_; }
  uint32_t node_id() const { return node_id_; }
  sim::MediaType media() const { return media_; }
  uint64_t capacity() const { return capacity_; }

  Status Write(uint64_t offset, ByteView data);
  Result<Bytes> Read(uint64_t offset, uint64_t length) const;

  /// Fault injection: a failed disk errors on every read and write.
  void SetFailed(bool failed) { failed_.store(failed); }
  bool failed() const { return failed_.load(); }

  /// Wipe contents (models disk replacement after failure).
  void Reset();

  const sim::DeviceModel& device_model() const { return model_; }
  sim::DeviceModel* mutable_device_model() { return &model_; }

 private:
  // Contents are stored sparsely in fixed pages: a fresh 16 TB disk costs
  // nothing until written, and writes at high extent offsets stay O(size).
  static constexpr uint64_t kPageSize = 64 * 1024;

  uint32_t id_;
  uint32_t node_id_;
  uint64_t capacity_;
  sim::MediaType media_;
  mutable sim::DeviceModel model_;
  std::atomic<bool> failed_{false};
  mutable Mutex mu_{LockRank::kBlockDevice, "storage.block_device"};
  std::unordered_map<uint64_t, Bytes> pages_
      GUARDED_BY(mu_);  // page index -> kPageSize bytes
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_BLOCK_DEVICE_H_
