#ifndef STREAMLAKE_STORAGE_PLOG_H_
#define STREAMLAKE_STORAGE_PLOG_H_

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "storage/erasure_coding.h"
#include "storage/storage_pool.h"

namespace streamlake::storage {

/// How a PLog protects its data (CREATE_OPTIONS_S in Fig. 3 lets stream
/// objects choose "replicate or erasure code").
struct RedundancyConfig {
  enum class Scheme { kReplication, kErasureCoding };

  Scheme scheme = Scheme::kReplication;
  int replicas = 3;   // replication: total copies
  int ec_data = 4;    // EC: data shards (k)
  int ec_parity = 1;  // EC: parity shards (m)

  static RedundancyConfig Replication(int copies) {
    RedundancyConfig c;
    c.scheme = Scheme::kReplication;
    c.replicas = copies;
    return c;
  }
  static RedundancyConfig ErasureCoding(int k, int m) {
    RedundancyConfig c;
    c.scheme = Scheme::kErasureCoding;
    c.ec_data = k;
    c.ec_parity = m;
    return c;
  }

  /// Number of extents (disks) one PLog spans.
  int Width() const {
    return scheme == Scheme::kReplication ? replicas : ec_data + ec_parity;
  }
  /// Physical bytes written per logical byte.
  double Amplification() const {
    return scheme == Scheme::kReplication
               ? static_cast<double>(replicas)
               : static_cast<double>(ec_data + ec_parity) / ec_data;
  }
  /// Simultaneous disk/node failures survived.
  int FaultTolerance() const {
    return scheme == Scheme::kReplication ? replicas - 1 : ec_parity;
  }
};

struct PlogConfig {
  /// Logical address space of one PLog ("128 MB of addresses per shard").
  uint64_t capacity = 128ULL << 20;
  /// EC stripe unit: bytes per shard per stripe.
  uint64_t stripe_unit = 64ULL << 10;
  RedundancyConfig redundancy;
};

/// \brief Persistence Log: the unit of durable storage under stream and
/// table objects (Fig. 4-e/f).
///
/// A PLog controls a fixed logical address range backed by extents on
/// multiple disks spread across nodes. Appends are framed with a CRC.
/// Replication writes each record to every replica extent; erasure coding
/// accumulates a stripe buffer and writes k data + m parity shards per
/// stripe. Reads survive up to FaultTolerance() disk failures (EC decodes
/// missing shards from parity).
class Plog {
 public:
  /// Allocates extents in `pool` across distinct nodes when possible.
  static Result<std::unique_ptr<Plog>> Create(StoragePool* pool,
                                              PlogConfig config,
                                              uint64_t now_ns = 0);

  ~Plog();

  Plog(const Plog&) = delete;
  Plog& operator=(const Plog&) = delete;

  /// Append one record; returns its logical offset. Fails with
  /// ResourceExhausted when the PLog is full (caller seals and rolls over)
  /// and IOError when too many disks are down to meet the redundancy bar.
  Result<uint64_t> Append(ByteView record);

  /// Read the record at `offset` (as returned by Append).
  Result<Bytes> ReadRecord(uint64_t offset) const;

  /// Raw logical-range read; used by migration and recovery.
  Result<Bytes> ReadRange(uint64_t offset, uint64_t length) const;

  /// Persist any buffered (EC) stripe tail. Pads to a stripe boundary, so
  /// subsequent appends begin on the next stripe.
  Status Flush();

  /// Flush and mark immutable.
  Status Seal();
  bool sealed() const;

  /// Move this PLog's data to `target` (the tiering service's primitive).
  /// Logical offsets are preserved; old extents are freed.
  Status MigrateTo(StoragePool* target);

  /// Indices of extents whose device currently reports failure.
  std::vector<int> FailedExtents() const;

  /// Data reconstruction (Section III: the pools implement "data
  /// reconstruction"): rebuild every failed extent's contents from the
  /// surviving replicas/shards onto freshly allocated extents. Fails if
  /// losses exceed the redundancy's fault tolerance.
  Status RepairFailedExtents();

  uint64_t size() const;      // logical bytes appended (incl. stripe pads)
  uint64_t capacity() const { return config_.capacity; }
  uint64_t record_count() const;
  StoragePool* pool() const {
    MutexLock lock(&mu_);
    return pool_;
  }
  const RedundancyConfig& redundancy() const { return config_.redundancy; }

  /// Garbage accounting for the pool GC: bytes of deleted records.
  void AddGarbage(uint64_t bytes);
  uint64_t garbage_bytes() const;
  /// Live payload bytes (appended payloads minus garbage).
  uint64_t live_bytes() const;

  uint64_t created_at_ns() const { return created_at_ns_; }
  uint64_t last_append_ns() const {
    MutexLock lock(&mu_);
    return last_append_ns_;
  }
  void set_last_append_ns(uint64_t ns) {
    MutexLock lock(&mu_);
    last_append_ns_ = ns;
  }

  /// Release all extents back to the pool. The PLog is unusable afterwards.
  Status Free();

 private:
  Plog(StoragePool* pool, PlogConfig config, std::vector<Extent> extents,
       uint64_t now_ns);

  uint64_t StripeDataSize() const {
    return config_.stripe_unit * config_.redundancy.ec_data;
  }
  static uint64_t ExtentSizeFor(const PlogConfig& config);
  uint64_t ExtentSize() const;

  // EC internals (mu_ held):
  Status WriteStripeLocked(uint64_t stripe_index, ByteView data)
      REQUIRES(mu_);
  /// Encode and persist one or more consecutive full stripes with a
  /// single device write per shard.
  Status WriteStripesLocked(uint64_t first_stripe, ByteView data)
      REQUIRES(mu_);
  Result<Bytes> ReadRangeLocked(uint64_t offset, uint64_t length) const
      REQUIRES(mu_);
  Result<Bytes> ReconstructStripeLocked(uint64_t stripe_index) const
      REQUIRES(mu_);

  // pool_/extents_ are swapped wholesale by MigrateTo; every access (the
  // append/read/repair paths and the pool() accessor) holds mu_.
  StoragePool* pool_ GUARDED_BY(mu_);
  PlogConfig config_;
  std::vector<Extent> extents_ GUARDED_BY(mu_);
  std::unique_ptr<ReedSolomon> rs_;  // EC only

  mutable Mutex mu_{LockRank::kPlog, "storage.plog"};
  uint64_t size_ GUARDED_BY(mu_) = 0;           // logical frontier
  uint64_t striped_bytes_ GUARDED_BY(mu_) = 0;  // EC: bytes durably striped
  Bytes pending_ GUARDED_BY(mu_);  // EC: stripe buffer (logical tail)
  bool sealed_ GUARDED_BY(mu_) = false;
  bool freed_ GUARDED_BY(mu_) = false;
  uint64_t record_count_ GUARDED_BY(mu_) = 0;
  uint64_t payload_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t garbage_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t created_at_ns_ = 0;
  uint64_t last_append_ns_ GUARDED_BY(mu_) = 0;
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_PLOG_H_
