#ifndef STREAMLAKE_STORAGE_TIERING_H_
#define STREAMLAKE_STORAGE_TIERING_H_

#include <cstdint>

#include "sim/clock.h"
#include "storage/plog_store.h"

namespace streamlake::storage {

/// When a sealed PLog moves from the hot (SSD) tier to the cold (HDD) tier.
struct TieringPolicy {
  /// Migrate sealed PLogs whose last append is older than this.
  uint64_t cold_after_ns = 3600ULL * sim::kSecond;
  /// Stop migrating when hot-pool allocation drops below this fraction.
  double hot_watermark = 0.0;
};

/// \brief The tiering service of the data service layer: "static and
/// dynamic data migration and eviction between the SSD and HDD storage
/// pools based on tiering policies, which saves a lot of storage costs."
///
/// Run() performs one scan; background deployments call it periodically.
class TieringService {
 public:
  TieringService(PlogStore* plogs, StoragePool* hot, StoragePool* cold,
                 sim::SimClock* clock, TieringPolicy policy)
      : plogs_(plogs), hot_(hot), cold_(cold), clock_(clock),
        policy_(policy) {}

  struct RunStats {
    uint64_t migrated_plogs = 0;
    uint64_t migrated_bytes = 0;
  };

  /// Scan all PLogs and migrate the cold, sealed ones. Returns what moved.
  Result<RunStats> Run();

 private:
  PlogStore* plogs_;
  StoragePool* hot_;
  StoragePool* cold_;
  sim::SimClock* clock_;
  TieringPolicy policy_;
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_TIERING_H_
