#include "storage/repair.h"

namespace streamlake::storage {

Result<RepairService::RunStats> RepairService::Run() {
  RunStats stats;
  std::vector<Plog*> degraded;
  plogs_->ForEachPlog([&](uint32_t /*shard*/, uint32_t /*index*/, Plog* plog) {
    ++stats.plogs_scanned;
    if (!plog->FailedExtents().empty()) degraded.push_back(plog);
  });
  stats.plogs_degraded = degraded.size();
  for (Plog* plog : degraded) {
    Status status = plog->RepairFailedExtents();
    if (status.ok()) {
      ++stats.plogs_repaired;
    } else if (status.IsIOError()) {
      ++stats.plogs_unrecoverable;
    } else {
      return status;
    }
  }
  return stats;
}

}  // namespace streamlake::storage
