#ifndef STREAMLAKE_STORAGE_OBJECT_STORE_H_
#define STREAMLAKE_STORAGE_OBJECT_STORE_H_

#include <string>
#include <vector>

#include "common/mutex.h"
#include "kv/kv_store.h"
#include "storage/plog_store.h"

namespace streamlake::storage {

/// \brief Path-addressed object namespace over the PLog store.
///
/// Table objects are "logically defined by a directory of data and metadata
/// files ... converted to PLogs in the storage for redundant persistence"
/// (Section IV-B). ObjectStore provides that file abstraction: each path
/// maps to a list of PLog fragments, indexed in a KV store (the paper keeps
/// file indexes in key-value databases, Fig. 4).
class ObjectStore {
 public:
  /// `index` typically lives on SCM/DRAM; `plogs` on the SSD/HDD pools.
  /// Files larger than `max_fragment_bytes` are split across PLog records.
  ObjectStore(PlogStore* plogs, kv::KvStore* index,
              uint64_t max_fragment_bytes = 8ULL << 20);

  /// Create or replace the object at `path`.
  Status Write(const std::string& path, ByteView data);

  Result<Bytes> Read(const std::string& path) const;

  /// Remove the object and mark its fragments as garbage.
  Status Delete(const std::string& path);

  bool Exists(const std::string& path) const;
  Result<uint64_t> Size(const std::string& path) const;

  /// Paths with the given prefix, in lexicographic order.
  std::vector<std::string> List(const std::string& prefix,
                                size_t limit = SIZE_MAX) const;

  uint64_t num_objects() const;

  // ---- Storage-pool features of Section III ----

  /// Write-once-read-many: objects under `prefix` become immutable —
  /// overwrites and deletes are rejected (compliance retention).
  void SetWormPrefix(const std::string& prefix);

  /// Zero-copy clone: `dest` shares `source`'s fragments (refcounted;
  /// the PLog space is reclaimed only when the last referent dies).
  Status Clone(const std::string& source, const std::string& dest);

  /// Namespace snapshot: clone every object under `source_prefix` to the
  /// same path under `dest_prefix`. Returns objects snapshotted.
  Result<size_t> SnapshotPrefix(const std::string& source_prefix,
                                const std::string& dest_prefix);

 private:
  struct Fragment {
    PlogAddress address;
    uint64_t length = 0;
  };

  static std::string IndexKey(const std::string& path);
  static std::string RefKey(const PlogAddress& address);
  static void EncodeFragments(const std::vector<Fragment>& fragments,
                              Bytes* dst);
  static Result<std::vector<Fragment>> DecodeFragments(ByteView data);

  bool IsWorm(const std::string& path) const;
  /// Decrement a fragment's refcount; garbage-collect at zero.
  Status ReleaseFragment(const Fragment& fragment);
  Status AcquireFragment(const Fragment& fragment);

  PlogStore* plogs_;
  kv::KvStore* index_;
  uint64_t max_fragment_bytes_;
  mutable Mutex worm_mu_{LockRank::kObjectStoreWorm,
                         "storage.object_store.worm"};
  std::vector<std::string> worm_prefixes_ GUARDED_BY(worm_mu_);
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_OBJECT_STORE_H_
