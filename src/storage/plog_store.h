#ifndef STREAMLAKE_STORAGE_PLOG_STORE_H_
#define STREAMLAKE_STORAGE_PLOG_STORE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "sim/clock.h"
#include "storage/plog.h"

namespace streamlake::storage {

/// Durable address of one record: which shard, which PLog in the shard's
/// chain, and the logical offset inside that PLog.
struct PlogAddress {
  uint32_t shard = 0;
  uint32_t plog_index = 0;
  uint64_t offset = 0;

  bool operator==(const PlogAddress& other) const {
    return shard == other.shard && plog_index == other.plog_index &&
           offset == other.offset;
  }
};

struct PlogStoreConfig {
  /// Logical shards of the distributed hash table (Fig. 4-d). The paper
  /// uses 4096; tests shrink this.
  uint32_t num_shards = 4096;
  /// Lock stripes the shards are spread over (shard s lives in stripe
  /// s % num_stripes). Appends/reads on shards in different stripes never
  /// contend; store-wide operations visit stripes one at a time instead of
  /// stopping the world. Clamped to [1, num_shards].
  uint32_t num_stripes = 64;
  PlogConfig plog;
  /// Test/bench hook invoked inside Append while the stripe lock is held,
  /// right after the record lands on the device. Stands in for device
  /// dwell time: lets tests prove that stalling one stripe's I/O does not
  /// block appends on other stripes, and lets bench_shard_scaling model a
  /// real per-append device latency. Null (default) = no-op.
  std::function<void(uint32_t shard)> io_delay_hook;
  /// Read-side twin of io_delay_hook: invoked inside Read while the
  /// stripe lock is held, right after the record comes off the device.
  /// Lets bench_scan_scaling model per-read device latency to prove scan
  /// fan-out overlaps I/O across files. Null (default) = no-op.
  std::function<void(uint32_t shard)> io_read_delay_hook;
};

/// \brief The store-layer write path of Fig. 4: records hash to one of
/// `num_shards` logical shards; each shard's space is managed by a chain
/// of PLogs (the active one takes appends; full ones are sealed and become
/// candidates for tiering and GC).
class PlogStore {
 public:
  PlogStore(StoragePool* pool, PlogStoreConfig config, sim::SimClock* clock);

  /// Hash a key to its shard ("a distributed hash table is leveraged to
  /// ensure even data distribution").
  uint32_t ShardOf(ByteView key) const;

  /// Append to an explicit shard; rolls the active PLog when full.
  Result<PlogAddress> Append(uint32_t shard, ByteView record);

  /// Append routed by key hash.
  Result<PlogAddress> AppendKeyed(ByteView key, ByteView record) {
    return Append(ShardOf(key), record);
  }

  Result<Bytes> Read(const PlogAddress& address) const;

  /// Mark a record's payload dead; when a sealed PLog's live bytes hit
  /// zero its extents are reclaimed ("garbage collection" of the pools).
  Status MarkGarbage(const PlogAddress& address, uint64_t payload_bytes);

  /// Flush every active PLog (EC stripe tails).
  Status FlushAll();

  /// Visit every PLog (tiering service, stats).
  void ForEachPlog(const std::function<void(uint32_t shard, uint32_t index,
                                            Plog*)>& fn) const;

  /// Migrate one sealed PLog to `target` (tiering primitive). Addresses
  /// remain valid.
  Status MigratePlog(uint32_t shard, uint32_t index, StoragePool* target);

  uint32_t num_shards() const { return config_.num_shards; }
  uint32_t num_stripes() const {
    return static_cast<uint32_t>(stripes_.size());
  }
  uint64_t TotalLogicalBytes() const;
  uint64_t TotalPlogs() const;
  /// Live payload bytes (logical minus garbage) across all PLogs.
  uint64_t TotalLiveBytes() const;
  /// Physical footprint of live data: live bytes x redundancy
  /// amplification (the "storage usage" of Table I).
  uint64_t TotalLivePhysicalBytes() const;

 private:
  struct Shard {
    std::vector<std::unique_ptr<Plog>> chain;
  };

  /// One lock stripe: shard s lives in stripe s % num_stripes at local
  /// index s / num_stripes. All stripe mutexes share LockRank::kPlogStore
  /// and carry their array index as the stripe sub-rank, so the runtime
  /// checker permits multi-stripe operations only in ascending stripe
  /// order (FlushAll, ForEachPlog, Total*) and still aborts on any ABBA
  /// pattern between stripes.
  struct Stripe {
    Stripe(uint32_t index, size_t shard_count)
        : mu(LockRank::kPlogStore, "storage.plog_store.stripe", index),
          shards(shard_count) {}
    mutable Mutex mu{LockRank::kPlogStore, "storage.plog_store.stripe"};
    std::vector<Shard> shards GUARDED_BY(mu);
  };

  Stripe& StripeFor(uint32_t shard) const {
    return *stripes_[shard % stripes_.size()];
  }
  uint32_t LocalIndex(uint32_t shard) const {
    return shard / static_cast<uint32_t>(stripes_.size());
  }

  StoragePool* pool_;
  PlogStoreConfig config_;
  sim::SimClock* clock_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_PLOG_STORE_H_
