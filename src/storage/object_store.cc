#include "storage/object_store.h"

#include "common/coding.h"

namespace streamlake::storage {

namespace {
constexpr std::string_view kIndexPrefix = "obj/";
}

ObjectStore::ObjectStore(PlogStore* plogs, kv::KvStore* index,
                         uint64_t max_fragment_bytes)
    : plogs_(plogs), index_(index), max_fragment_bytes_(max_fragment_bytes) {}

std::string ObjectStore::IndexKey(const std::string& path) {
  return std::string(kIndexPrefix) + path;
}

std::string ObjectStore::RefKey(const PlogAddress& address) {
  return "ref/" + std::to_string(address.shard) + "/" +
         std::to_string(address.plog_index) + "/" +
         std::to_string(address.offset);
}

bool ObjectStore::IsWorm(const std::string& path) const {
  MutexLock lock(&worm_mu_);
  for (const std::string& prefix : worm_prefixes_) {
    if (path.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

void ObjectStore::SetWormPrefix(const std::string& prefix) {
  MutexLock lock(&worm_mu_);
  worm_prefixes_.push_back(prefix);
}

Status ObjectStore::AcquireFragment(const Fragment& fragment) {
  auto count = index_->Get(RefKey(fragment.address));
  uint64_t refs = count.ok() ? std::stoull(*count) : 1;
  return index_->Put(RefKey(fragment.address), std::to_string(refs + 1));
}

Status ObjectStore::ReleaseFragment(const Fragment& fragment) {
  auto count = index_->Get(RefKey(fragment.address));
  uint64_t refs = count.ok() ? std::stoull(*count) : 1;
  if (refs <= 1) {
    if (count.ok()) {
      SL_RETURN_NOT_OK(index_->Delete(RefKey(fragment.address)));
    }
    return plogs_->MarkGarbage(fragment.address, fragment.length);
  }
  return index_->Put(RefKey(fragment.address), std::to_string(refs - 1));
}

void ObjectStore::EncodeFragments(const std::vector<Fragment>& fragments,
                                  Bytes* dst) {
  PutVarint64(dst, fragments.size());
  for (const Fragment& f : fragments) {
    PutVarint64(dst, f.address.shard);
    PutVarint64(dst, f.address.plog_index);
    PutVarint64(dst, f.address.offset);
    PutVarint64(dst, f.length);
  }
}

Result<std::vector<ObjectStore::Fragment>> ObjectStore::DecodeFragments(
    ByteView data) {
  Decoder dec(data);
  uint64_t count;
  if (!dec.GetVarint(&count)) return Status::Corruption("fragment count");
  if (count > dec.Remaining()) {
    return Status::Corruption("fragment count bogus");
  }
  std::vector<Fragment> fragments;
  fragments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Fragment f;
    uint64_t shard, plog_index;
    if (!dec.GetVarint(&shard) || !dec.GetVarint(&plog_index) ||
        !dec.GetVarint(&f.address.offset) || !dec.GetVarint(&f.length)) {
      return Status::Corruption("fragment fields");
    }
    f.address.shard = static_cast<uint32_t>(shard);
    f.address.plog_index = static_cast<uint32_t>(plog_index);
    fragments.push_back(f);
  }
  return fragments;
}

Status ObjectStore::Write(const std::string& path, ByteView data) {
  // Replace semantics: free old fragments afterwards on success.
  std::vector<Fragment> old_fragments;
  auto existing = index_->Get(IndexKey(path));
  if (existing.ok()) {
    if (IsWorm(path)) {
      return Status::InvalidArgument("WORM: " + path + " is immutable");
    }
    SL_ASSIGN_OR_RETURN(old_fragments, DecodeFragments(ByteView(*existing)));
  }

  // The appended fragments become visible only through the final index
  // Put; until then any failure orphans them via MarkGarbage so readers
  // never see a half-written object.
  std::vector<Fragment> fragments;
  Status s = Status::OK();
  uint64_t pos = 0;
  do {
    uint64_t len = std::min<uint64_t>(max_fragment_bytes_, data.size() - pos);
    Fragment f;
    f.length = len;
    // Route fragments by path+index so a big file spreads over shards.
    std::string route = path + "#" + std::to_string(fragments.size());
    auto address =
        plogs_->AppendKeyed(ByteView(route), data.subview(pos, len));
    if (!address.ok()) {
      s = address.status();
      break;
    }
    f.address = *address;
    fragments.push_back(f);
    pos += len;
  } while (pos < data.size());

  if (s.ok()) {
    Bytes encoded;
    EncodeFragments(fragments, &encoded);
    s = index_->Put(IndexKey(path), BytesToString(encoded));
  }
  if (!s.ok()) {
    for (const Fragment& f : fragments) {
      plogs_->MarkGarbage(f.address, f.length)
          .LogIgnored("object write rollback");
    }
    return s;
  }

  // The new index entry is committed; releasing the replaced fragments is
  // best-effort garbage collection and must not fail the completed write.
  for (const Fragment& f : old_fragments) {
    ReleaseFragment(f).LogIgnored("object overwrite release");
  }
  return Status::OK();
}

Result<Bytes> ObjectStore::Read(const std::string& path) const {
  SL_ASSIGN_OR_RETURN(std::string encoded, index_->Get(IndexKey(path)));
  SL_ASSIGN_OR_RETURN(auto fragments, DecodeFragments(ByteView(encoded)));
  Bytes out;
  for (const Fragment& f : fragments) {
    SL_ASSIGN_OR_RETURN(Bytes part, plogs_->Read(f.address));
    if (part.size() != f.length) {
      return Status::Corruption("fragment length mismatch at " + path);
    }
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Status ObjectStore::Delete(const std::string& path) {
  SL_ASSIGN_OR_RETURN(std::string encoded, index_->Get(IndexKey(path)));
  if (IsWorm(path)) {
    return Status::InvalidArgument("WORM: " + path +
                                   " is retained and cannot be deleted");
  }
  SL_ASSIGN_OR_RETURN(auto fragments, DecodeFragments(ByteView(encoded)));
  SL_RETURN_NOT_OK(index_->Delete(IndexKey(path)));
  // The object is gone once the index entry is; fragment releases are
  // best-effort GC (a failed release leaks re-collectable garbage, but
  // failing here would leave the delete half-reported to the caller).
  for (const Fragment& f : fragments) {
    ReleaseFragment(f).LogIgnored("object delete release");
  }
  return Status::OK();
}

Status ObjectStore::Clone(const std::string& source, const std::string& dest) {
  SL_ASSIGN_OR_RETURN(std::string encoded, index_->Get(IndexKey(source)));
  SL_ASSIGN_OR_RETURN(auto fragments, DecodeFragments(ByteView(encoded)));
  // Replace semantics at the destination.
  std::vector<Fragment> old_fragments;
  auto existing = index_->Get(IndexKey(dest));
  if (existing.ok()) {
    if (IsWorm(dest)) {
      return Status::InvalidArgument("WORM: " + dest + " is immutable");
    }
    SL_ASSIGN_OR_RETURN(old_fragments, DecodeFragments(ByteView(*existing)));
  }
  // Refcount bumps become real only with the dest index Put; undo them
  // if anything fails before it so no fragment leaks a phantom reference.
  Status s = Status::OK();
  size_t acquired = 0;
  for (const Fragment& f : fragments) {
    s = AcquireFragment(f);
    if (!s.ok()) break;
    ++acquired;
  }
  if (s.ok()) s = index_->Put(IndexKey(dest), encoded);
  if (!s.ok()) {
    for (size_t i = 0; i < acquired; ++i) {
      ReleaseFragment(fragments[i]).LogIgnored("clone rollback");
    }
    return s;
  }
  // Dest entry committed; releasing the replaced fragments is best-effort.
  for (const Fragment& f : old_fragments) {
    ReleaseFragment(f).LogIgnored("clone overwrite release");
  }
  return Status::OK();
}

Result<size_t> ObjectStore::SnapshotPrefix(const std::string& source_prefix,
                                           const std::string& dest_prefix) {
  size_t cloned = 0;
  for (const std::string& path : List(source_prefix)) {
    std::string dest = dest_prefix + path.substr(source_prefix.size());
    SL_RETURN_NOT_OK(Clone(path, dest));
    ++cloned;
  }
  return cloned;
}

bool ObjectStore::Exists(const std::string& path) const {
  return index_->Contains(IndexKey(path));
}

Result<uint64_t> ObjectStore::Size(const std::string& path) const {
  SL_ASSIGN_OR_RETURN(std::string encoded, index_->Get(IndexKey(path)));
  SL_ASSIGN_OR_RETURN(auto fragments, DecodeFragments(ByteView(encoded)));
  uint64_t total = 0;
  for (const Fragment& f : fragments) total += f.length;
  return total;
}

std::vector<std::string> ObjectStore::List(const std::string& prefix,
                                           size_t limit) const {
  std::string start = IndexKey(prefix);
  std::string end = start;
  end.back() = end.back() + 1;  // next prefix; safe for ASCII paths
  auto rows = index_->Scan(start, end, limit);
  std::vector<std::string> paths;
  paths.reserve(rows.size());
  for (const auto& [key, value] : rows) {
    paths.push_back(key.substr(kIndexPrefix.size()));
  }
  return paths;
}

uint64_t ObjectStore::num_objects() const {
  return index_->Scan(std::string(kIndexPrefix),
                      std::string(kIndexPrefix) + "\xff")
      .size();
}

}  // namespace streamlake::storage
