#ifndef STREAMLAKE_STORAGE_ERASURE_CODING_H_
#define STREAMLAKE_STORAGE_ERASURE_CODING_H_

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace streamlake::storage {

/// \brief Systematic Reed–Solomon erasure code over GF(2^8).
///
/// Splits a payload into `k` equal data shards and computes `m` parity
/// shards (Vandermonde-style Cauchy-free construction). Any `k` of the
/// `k + m` shards reconstruct the payload, so a PLog spread over k+m disks
/// tolerates `m` simultaneous disk/node failures at a storage overhead of
/// (k+m)/k — the paper's "91% disk utilization vs 33% for 3x replication"
/// (k=10, m=1: 10/11 ≈ 91%; HDFS 3x: 1/3 ≈ 33%).
class ReedSolomon {
 public:
  /// k data shards, m parity shards. Requires 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

  /// Split + encode. Returns k+m shards, each of equal size
  /// (ceil(payload/k) + the original size is carried by the caller).
  std::vector<Bytes> Encode(ByteView payload) const;

  /// Reconstruct the payload from any >= k shards. `shards[i]` is nullopt
  /// for lost shards; present shards must be intact and of equal size.
  /// `payload_size` trims the zero padding added by Encode.
  Result<Bytes> Decode(const std::vector<std::optional<Bytes>>& shards,
                       size_t payload_size) const;

 private:
  int k_;
  int m_;
  /// (k+m) x k systematic generator matrix: Vandermonde normalized so the
  /// top k rows are the identity. Any k rows are invertible (MDS).
  std::vector<std::vector<uint8_t>> generator_;
};

/// Gauss–Jordan inversion over GF(2^8); exposed for tests.
/// Returns an error for singular matrices.
Result<std::vector<std::vector<uint8_t>>> InvertMatrix(
    std::vector<std::vector<uint8_t>> a);

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_ERASURE_CODING_H_
