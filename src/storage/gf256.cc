#include "storage/gf256.h"

#include <array>

#include "common/logging.h"

namespace streamlake::storage {

namespace {

struct Tables {
  std::array<uint8_t, 256> log{};
  std::array<uint8_t, 512> exp{};  // doubled to skip the mod-255 on lookups
};

Tables MakeTables() {
  Tables t;
  // Generator 3 is primitive for 0x11B.
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<uint8_t>(x);
    t.log[x] = static_cast<uint8_t>(i);
    // multiply x by 3: x*2 + x
    uint16_t x2 = x << 1;
    if (x2 & 0x100) x2 ^= 0x11B;
    x = x2 ^ x;
  }
  for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  return t;
}

const Tables& GetTables() {
  static const Tables kTables = MakeTables();
  return kTables;
}

}  // namespace

uint8_t Gf256::Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = GetTables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t Gf256::Inv(uint8_t b) {
  SL_CHECK(b != 0);
  const Tables& t = GetTables();
  return t.exp[255 - t.log[b]];
}

uint8_t Gf256::Pow(uint8_t a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = GetTables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * n) % 255];
}

}  // namespace streamlake::storage
