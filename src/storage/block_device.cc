#include "storage/block_device.h"

namespace streamlake::storage {

BlockDevice::BlockDevice(uint32_t id, uint32_t node_id,
                         uint64_t capacity_bytes, sim::MediaType media,
                         sim::SimClock* clock)
    : id_(id),
      node_id_(node_id),
      capacity_(capacity_bytes),
      media_(media),
      model_(sim::DeviceProfile::ForMedia(media), clock) {}

Status BlockDevice::Write(uint64_t offset, ByteView data) {
  if (failed_.load()) {
    return Status::IOError("disk " + std::to_string(id_) + " failed");
  }
  if (offset + data.size() > capacity_) {
    return Status::ResourceExhausted("disk " + std::to_string(id_) +
                                     " write past capacity");
  }
  {
    MutexLock lock(&mu_);
    uint64_t pos = 0;
    while (pos < data.size()) {
      uint64_t page = (offset + pos) / kPageSize;
      uint64_t in_page = (offset + pos) % kPageSize;
      uint64_t len = std::min<uint64_t>(kPageSize - in_page, data.size() - pos);
      Bytes& storage = pages_[page];
      if (storage.size() < in_page + len) storage.resize(kPageSize);
      std::memcpy(storage.data() + in_page, data.data() + pos, len);
      pos += len;
    }
  }
  model_.ChargeWrite(data.size());
  return Status::OK();
}

Result<Bytes> BlockDevice::Read(uint64_t offset, uint64_t length) const {
  if (failed_.load()) {
    return Status::IOError("disk " + std::to_string(id_) + " failed");
  }
  if (offset + length > capacity_) {
    return Status::InvalidArgument("read past end of disk " +
                                   std::to_string(id_));
  }
  Bytes out(length, 0);
  {
    MutexLock lock(&mu_);
    uint64_t pos = 0;
    while (pos < length) {
      uint64_t page = (offset + pos) / kPageSize;
      uint64_t in_page = (offset + pos) % kPageSize;
      uint64_t len = std::min<uint64_t>(kPageSize - in_page, length - pos);
      auto it = pages_.find(page);
      if (it != pages_.end()) {
        std::memcpy(out.data() + pos, it->second.data() + in_page, len);
      }
      // Unwritten pages read back as zeros (thin provisioning).
      pos += len;
    }
  }
  model_.ChargeRead(length);
  return out;
}

void BlockDevice::Reset() {
  MutexLock lock(&mu_);
  pages_.clear();
  failed_.store(false);
}

}  // namespace streamlake::storage
