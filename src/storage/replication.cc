#include "storage/replication.h"

#include <set>

#include "common/hash.h"

namespace streamlake::storage {

Result<RemoteReplicationService::RunStats>
RemoteReplicationService::Replicate(const std::string& prefix) {
  RunStats stats;
  std::set<std::string> live;
  for (const std::string& path : primary_->List(prefix)) {
    live.insert(path);
    SL_ASSIGN_OR_RETURN(Bytes data, primary_->Read(path));
    uint32_t crc = Crc32c(ByteView(data));
    auto recorded = state_->Get(StateKey(path));
    if (recorded.ok() && std::stoul(*recorded) == crc) {
      ++stats.objects_unchanged;
      continue;
    }
    wan_->ChargeTransfer(data.size());
    SL_RETURN_NOT_OK(remote_->Write(path, ByteView(data)));
    SL_RETURN_NOT_OK(state_->Put(StateKey(path), std::to_string(crc)));
    ++stats.objects_shipped;
    stats.bytes_shipped += data.size();
  }
  // Prune remote objects deleted at the primary.
  for (const std::string& path : remote_->List(prefix)) {
    if (!live.count(path)) {
      SL_RETURN_NOT_OK(remote_->Delete(path));
      // Drop the recorded CRC too: a stale entry would make a future run
      // skip re-shipping an identical recreated object.
      SL_RETURN_NOT_OK(state_->Delete(StateKey(path)));
      ++stats.objects_pruned;
    }
  }
  return stats;
}

Status RemoteReplicationService::RestoreObject(const std::string& path) {
  SL_ASSIGN_OR_RETURN(Bytes data, remote_->Read(path));
  wan_->ChargeTransfer(data.size());
  return primary_->Write(path, ByteView(data));
}

}  // namespace streamlake::storage
