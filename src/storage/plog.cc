#include "storage/plog.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace streamlake::storage {

namespace {
// Record frame: [payload_len:4][crc32c(payload):4][payload].
constexpr uint64_t kRecordHeader = 8;
}  // namespace

uint64_t Plog::ExtentSizeFor(const PlogConfig& config) {
  if (config.redundancy.scheme == RedundancyConfig::Scheme::kReplication) {
    return config.capacity;
  }
  uint64_t stripe_data = config.stripe_unit * config.redundancy.ec_data;
  uint64_t stripes = (config.capacity + stripe_data - 1) / stripe_data;
  return stripes * config.stripe_unit;
}

uint64_t Plog::ExtentSize() const { return ExtentSizeFor(config_); }

Result<std::unique_ptr<Plog>> Plog::Create(StoragePool* pool,
                                           PlogConfig config,
                                           uint64_t now_ns) {
  const uint64_t extent_size = ExtentSizeFor(config);
  // Spread across distinct nodes first; fall back to distinct disks when
  // the cluster has fewer nodes than the redundancy width.
  auto extents = pool->AllocateExtents(config.redundancy.Width(), extent_size,
                                       /*distinct_nodes=*/true);
  if (!extents.ok()) {
    extents = pool->AllocateExtents(config.redundancy.Width(), extent_size,
                                    /*distinct_nodes=*/false);
  }
  if (!extents.ok()) return extents.status();
  // Extents go in through the constructor: no member is ever written on
  // an object that might already be visible to another thread.
  return std::unique_ptr<Plog>(
      new Plog(pool, config, std::move(*extents), now_ns));
}

Plog::Plog(StoragePool* pool, PlogConfig config, std::vector<Extent> extents,
           uint64_t now_ns)
    : pool_(pool),
      config_(config),
      extents_(std::move(extents)),
      created_at_ns_(now_ns),
      last_append_ns_(now_ns) {
  if (config_.redundancy.scheme == RedundancyConfig::Scheme::kErasureCoding) {
    rs_ = std::make_unique<ReedSolomon>(config_.redundancy.ec_data,
                                        config_.redundancy.ec_parity);
  }
}

Plog::~Plog() = default;

Result<uint64_t> Plog::Append(ByteView record) {
  MutexLock lock(&mu_);
  if (freed_) return Status::InvalidArgument("plog freed");
  if (sealed_) return Status::InvalidArgument("plog sealed");
  uint64_t frame_size = kRecordHeader + record.size();
  if (size_ + frame_size > config_.capacity) {
    return Status::ResourceExhausted("plog full");
  }

  Bytes frame;
  frame.reserve(frame_size);
  PutFixed32(&frame, static_cast<uint32_t>(record.size()));
  PutFixed32(&frame, Crc32c(record));
  AppendBytes(&frame, record);

  uint64_t offset = size_;
  if (config_.redundancy.scheme == RedundancyConfig::Scheme::kReplication) {
    int ok_writes = 0;
    for (const Extent& extent : extents_) {
      Status s = extent.device->Write(extent.offset + offset, ByteView(frame));
      if (s.ok()) ++ok_writes;
    }
    if (ok_writes == 0) {
      return Status::IOError("all replicas failed");
    }
  } else {
    // EC: buffer, then stripe out every full stripe. All ready stripes
    // flush in one scatter-gather write per shard (the data bus's
    // "intelligent stripe aggregation", Section III).
    AppendBytes(&pending_, ByteView(frame));
    const uint64_t stripe_data = StripeDataSize();
    uint64_t full_stripes = pending_.size() / stripe_data;
    if (full_stripes > 0) {
      SL_RETURN_NOT_OK(WriteStripesLocked(
          striped_bytes_ / stripe_data,
          ByteView(pending_.data(), full_stripes * stripe_data)));
      pending_.erase(pending_.begin(),
                     pending_.begin() + full_stripes * stripe_data);
      striped_bytes_ += full_stripes * stripe_data;
    }
  }
  size_ += frame_size;
  ++record_count_;
  payload_bytes_ += record.size();
  return offset;
}

Status Plog::WriteStripeLocked(uint64_t stripe_index, ByteView data) {
  return WriteStripesLocked(stripe_index, data);
}

Status Plog::WriteStripesLocked(uint64_t first_stripe, ByteView data) {
  // `data` holds one or more full stripes. Encode each stripe, then issue
  // ONE contiguous device write per shard covering all of them (shard j's
  // stripe payloads are adjacent on disk).
  const uint64_t stripe_data = StripeDataSize();
  const uint64_t stripes = data.size() / stripe_data;
  const int width = config_.redundancy.Width();
  std::vector<Bytes> per_shard(width);
  for (int i = 0; i < width; ++i) {
    per_shard[i].reserve(stripes * config_.stripe_unit);
  }
  for (uint64_t s = 0; s < stripes; ++s) {
    std::vector<Bytes> shards =
        rs_->Encode(data.subview(s * stripe_data, stripe_data));
    for (int i = 0; i < width; ++i) {
      AppendBytes(&per_shard[i], ByteView(shards[i]));
    }
  }
  int failures = 0;
  for (int i = 0; i < width; ++i) {
    const Extent& extent = extents_[i];
    Status status = extent.device->Write(
        extent.offset + first_stripe * config_.stripe_unit,
        ByteView(per_shard[i]));
    if (!status.ok()) ++failures;
  }
  if (failures > config_.redundancy.ec_parity) {
    return Status::IOError("stripe write lost more shards than parity");
  }
  return Status::OK();
}

Status Plog::Flush() {
  MutexLock lock(&mu_);
  if (freed_) return Status::InvalidArgument("plog freed");
  if (config_.redundancy.scheme == RedundancyConfig::Scheme::kReplication ||
      pending_.empty()) {
    return Status::OK();
  }
  // Pad the tail to a full stripe; the pad becomes dead logical space and
  // the frontier moves to the next stripe boundary.
  const uint64_t stripe_data = StripeDataSize();
  uint64_t stripe_index = striped_bytes_ / stripe_data;
  Bytes padded = pending_;
  padded.resize(stripe_data, 0);
  SL_RETURN_NOT_OK(WriteStripeLocked(stripe_index, ByteView(padded)));
  striped_bytes_ += stripe_data;
  size_ = striped_bytes_;
  pending_.clear();
  return Status::OK();
}

Status Plog::Seal() {
  SL_RETURN_NOT_OK(Flush());
  MutexLock lock(&mu_);
  sealed_ = true;
  return Status::OK();
}

bool Plog::sealed() const {
  MutexLock lock(&mu_);
  return sealed_;
}

Result<Bytes> Plog::ReadRecord(uint64_t offset) const {
  MutexLock lock(&mu_);
  if (freed_) return Status::InvalidArgument("plog freed");
  SL_ASSIGN_OR_RETURN(Bytes header, ReadRangeLocked(offset, kRecordHeader));
  uint32_t len = DecodeFixed32(header.data());
  uint32_t expected_crc = DecodeFixed32(header.data() + 4);
  if (offset + kRecordHeader + len > size_) {
    return Status::Corruption("record length past log frontier");
  }
  SL_ASSIGN_OR_RETURN(Bytes payload,
                      ReadRangeLocked(offset + kRecordHeader, len));
  if (Crc32c(ByteView(payload)) != expected_crc) {
    return Status::Corruption("record crc mismatch");
  }
  return payload;
}

Result<Bytes> Plog::ReadRange(uint64_t offset, uint64_t length) const {
  MutexLock lock(&mu_);
  if (freed_) return Status::InvalidArgument("plog freed");
  return ReadRangeLocked(offset, length);
}

Result<Bytes> Plog::ReadRangeLocked(uint64_t offset, uint64_t length) const {
  if (offset + length > size_) {
    return Status::InvalidArgument("read past plog frontier");
  }
  if (config_.redundancy.scheme == RedundancyConfig::Scheme::kReplication) {
    for (const Extent& extent : extents_) {
      auto data = extent.device->Read(extent.offset + offset, length);
      if (data.ok()) return data;
    }
    return Status::IOError("all replicas unreadable");
  }

  // EC path. Bytes may live in the pending buffer (not yet striped).
  Bytes out;
  out.reserve(length);
  uint64_t striped_len = offset < striped_bytes_
                             ? std::min(length, striped_bytes_ - offset)
                             : 0;
  if (striped_len > 0) {
    const uint64_t stripe_data = StripeDataSize();
    const uint64_t unit = config_.stripe_unit;
    const uint64_t first_stripe = offset / stripe_data;
    const uint64_t last_stripe = (offset + striped_len - 1) / stripe_data;
    const uint64_t num_stripes = last_stripe - first_stripe + 1;
    // Fast path: a small read inside one shard unit is one device op.
    if (num_stripes == 1 &&
        (offset % stripe_data) / unit ==
            ((offset + striped_len - 1) % stripe_data) / unit) {
      uint64_t shard = (offset % stripe_data) / unit;
      uint64_t in_shard = (offset % stripe_data) % unit;
      const Extent& extent = extents_[shard];
      auto data = extent.device->Read(
          extent.offset + first_stripe * unit + in_shard, striped_len);
      if (data.ok()) {
        AppendBytes(&out, ByteView(*data));
      } else {
        SL_ASSIGN_OR_RETURN(Bytes stripe,
                            ReconstructStripeLocked(first_stripe));
        uint64_t in_stripe = offset % stripe_data;
        out.insert(out.end(), stripe.begin() + in_stripe,
                   stripe.begin() + in_stripe + striped_len);
      }
      if (striped_len == length) return out;
      uint64_t buf_off = offset + striped_len - striped_bytes_;
      uint64_t tail = length - striped_len;
      if (buf_off + tail > pending_.size()) {
        return Status::InvalidArgument("read past pending tail");
      }
      out.insert(out.end(), pending_.begin() + buf_off,
                 pending_.begin() + buf_off + tail);
      return out;
    }
    // Bulk scatter-gather: ONE contiguous read per data shard covering
    // every needed stripe, then reassemble the logical range. Failed
    // shards fall back to per-stripe parity reconstruction.
    std::vector<std::optional<Bytes>> shard_data(config_.redundancy.ec_data);
    for (int j = 0; j < config_.redundancy.ec_data; ++j) {
      const Extent& extent = extents_[j];
      auto data = extent.device->Read(extent.offset + first_stripe * unit,
                                      num_stripes * unit);
      if (data.ok()) shard_data[j] = std::move(*data);
    }
    std::map<uint64_t, Bytes> reconstructed;  // stripe -> logical bytes
    uint64_t pos = offset;
    uint64_t remaining = striped_len;
    while (remaining > 0) {
      uint64_t stripe_index = pos / stripe_data;
      uint64_t in_stripe = pos % stripe_data;
      uint64_t shard = in_stripe / unit;
      uint64_t in_shard = in_stripe % unit;
      uint64_t run = std::min({remaining, unit - in_shard});
      if (shard_data[shard].has_value()) {
        const Bytes& data = *shard_data[shard];
        uint64_t base = (stripe_index - first_stripe) * unit + in_shard;
        out.insert(out.end(), data.begin() + base, data.begin() + base + run);
      } else {
        auto it = reconstructed.find(stripe_index);
        if (it == reconstructed.end()) {
          SL_ASSIGN_OR_RETURN(Bytes stripe,
                              ReconstructStripeLocked(stripe_index));
          it = reconstructed.emplace(stripe_index, std::move(stripe)).first;
        }
        out.insert(out.end(), it->second.begin() + in_stripe,
                   it->second.begin() + in_stripe + run);
      }
      pos += run;
      remaining -= run;
    }
  }
  if (striped_len < length) {
    // Tail served from the stripe buffer.
    uint64_t buf_off = offset + striped_len - striped_bytes_;
    uint64_t tail = length - striped_len;
    if (buf_off + tail > pending_.size()) {
      return Status::InvalidArgument("read past pending tail");
    }
    out.insert(out.end(), pending_.begin() + buf_off,
               pending_.begin() + buf_off + tail);
  }
  return out;
}

Result<Bytes> Plog::ReconstructStripeLocked(uint64_t stripe_index) const {
  const int width = config_.redundancy.Width();
  std::vector<std::optional<Bytes>> shards(width);
  int available = 0;
  for (int i = 0; i < width; ++i) {
    const Extent& extent = extents_[i];
    auto data = extent.device->Read(
        extent.offset + stripe_index * config_.stripe_unit,
        config_.stripe_unit);
    if (data.ok()) {
      shards[i] = std::move(*data);
      ++available;
    }
  }
  if (available < config_.redundancy.ec_data) {
    return Status::IOError("stripe lost beyond parity tolerance");
  }
  return rs_->Decode(shards, StripeDataSize());
}

Status Plog::MigrateTo(StoragePool* target) {
  SL_RETURN_NOT_OK(Flush());
  MutexLock lock(&mu_);
  if (freed_) return Status::InvalidArgument("plog freed");
  SL_ASSIGN_OR_RETURN(Bytes content, ReadRangeLocked(0, size_));

  auto new_extents = target->AllocateExtents(config_.redundancy.Width(),
                                             ExtentSize(),
                                             /*distinct_nodes=*/true);
  if (!new_extents.ok()) {
    new_extents = target->AllocateExtents(config_.redundancy.Width(),
                                          ExtentSize(),
                                          /*distinct_nodes=*/false);
  }
  if (!new_extents.ok()) return new_extents.status();

  std::vector<Extent> old_extents = std::move(extents_);
  StoragePool* old_pool = pool_;
  extents_ = std::move(*new_extents);
  pool_ = target;

  Status write_status = Status::OK();
  if (config_.redundancy.scheme == RedundancyConfig::Scheme::kReplication) {
    for (const Extent& extent : extents_) {
      Status s = extent.device->Write(extent.offset, ByteView(content));
      if (!s.ok()) write_status = s;
    }
  } else {
    const uint64_t stripe_data = StripeDataSize();
    for (uint64_t pos = 0; pos < content.size(); pos += stripe_data) {
      uint64_t len = std::min(stripe_data, content.size() - pos);
      Bytes stripe(content.begin() + pos, content.begin() + pos + len);
      stripe.resize(stripe_data, 0);
      Status s = WriteStripeLocked(pos / stripe_data, ByteView(stripe));
      if (!s.ok()) write_status = s;
    }
  }
  if (!write_status.ok()) {
    // Roll back to the old extents; free the new ones.
    for (const Extent& extent : extents_) target->FreeExtent(extent);
    extents_ = std::move(old_extents);
    pool_ = old_pool;
    return write_status;
  }
  for (const Extent& extent : old_extents) old_pool->FreeExtent(extent);
  return Status::OK();
}

std::vector<int> Plog::FailedExtents() const {
  MutexLock lock(&mu_);
  std::vector<int> failed;
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (extents_[i].device->failed()) failed.push_back(static_cast<int>(i));
  }
  return failed;
}

Status Plog::RepairFailedExtents() {
  MutexLock lock(&mu_);
  if (freed_) return Status::InvalidArgument("plog freed");
  std::vector<int> failed;
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (extents_[i].device->failed()) failed.push_back(static_cast<int>(i));
  }
  if (failed.empty()) return Status::OK();
  if (static_cast<int>(failed.size()) > config_.redundancy.FaultTolerance()) {
    return Status::IOError("losses exceed fault tolerance; data unrecoverable");
  }

  // Allocate replacements, avoiding failed devices (the allocator skips
  // them implicitly only by capacity, so retry across the pool).
  for (int idx : failed) {
    SL_ASSIGN_OR_RETURN(auto replacement,
                        pool_->AllocateExtents(1, ExtentSize(),
                                               /*distinct_nodes=*/false));
    Extent new_extent = replacement[0];
    if (new_extent.device->failed()) {
      // Allocator handed back a failed disk; keep it allocated (it will
      // be freed) and report — a richer allocator would filter.
      pool_->FreeExtent(new_extent);
      return Status::IOError("no healthy disk available for repair");
    }
    if (config_.redundancy.scheme == RedundancyConfig::Scheme::kReplication) {
      // Copy the full log range from a healthy replica.
      SL_ASSIGN_OR_RETURN(Bytes content, ReadRangeLocked(0, size_));
      SL_RETURN_NOT_OK(new_extent.device->Write(new_extent.offset,
                                                ByteView(content)));
    } else {
      // Rebuild this shard stripe-by-stripe from the survivors.
      const uint64_t stripe_data = StripeDataSize();
      const uint64_t stripes =
          (striped_bytes_ + stripe_data - 1) / stripe_data;
      Bytes shard_content;
      shard_content.reserve(stripes * config_.stripe_unit);
      for (uint64_t s = 0; s < stripes; ++s) {
        SL_ASSIGN_OR_RETURN(Bytes stripe, ReconstructStripeLocked(s));
        std::vector<Bytes> shards = rs_->Encode(ByteView(stripe));
        AppendBytes(&shard_content, ByteView(shards[idx]));
      }
      SL_RETURN_NOT_OK(new_extent.device->Write(new_extent.offset,
                                                ByteView(shard_content)));
    }
    pool_->FreeExtent(extents_[idx]);
    extents_[idx] = new_extent;
  }
  return Status::OK();
}

uint64_t Plog::size() const {
  MutexLock lock(&mu_);
  return size_;
}

uint64_t Plog::record_count() const {
  MutexLock lock(&mu_);
  return record_count_;
}

void Plog::AddGarbage(uint64_t bytes) {
  MutexLock lock(&mu_);
  garbage_bytes_ += bytes;
}

uint64_t Plog::garbage_bytes() const {
  MutexLock lock(&mu_);
  return garbage_bytes_;
}

uint64_t Plog::live_bytes() const {
  MutexLock lock(&mu_);
  return payload_bytes_ - std::min(payload_bytes_, garbage_bytes_);
}

Status Plog::Free() {
  MutexLock lock(&mu_);
  if (freed_) return Status::OK();
  for (const Extent& extent : extents_) pool_->FreeExtent(extent);
  extents_.clear();
  freed_ = true;
  return Status::OK();
}

}  // namespace streamlake::storage
