#include "storage/tiering.h"

#include <vector>

#include "common/metrics.h"

namespace streamlake::storage {

Result<TieringService::RunStats> TieringService::Run() {
  static Counter* runs =
      MetricsRegistry::Global().GetCounter("storage.tiering.runs");
  static Counter* migrated_plogs =
      MetricsRegistry::Global().GetCounter("storage.tiering.migrated_plogs");
  static Counter* migrated_bytes =
      MetricsRegistry::Global().GetCounter("storage.tiering.migrated_bytes");
  runs->Increment();
  struct Candidate {
    uint32_t shard;
    uint32_t index;
    uint64_t bytes;
  };
  std::vector<Candidate> candidates;
  std::vector<Plog*> to_seal;
  const uint64_t now = clock_->NowNanos();
  plogs_->ForEachPlog([&](uint32_t shard, uint32_t index, Plog* plog) {
    if (plog->pool() != hot_) return;
    if (plog->live_bytes() == 0) return;  // GC handles dead plogs
    if (now - plog->last_append_ns() < policy_.cold_after_ns) return;
    // Cold but still active: seal it so it can move (age-based eviction —
    // the shard simply opens a fresh PLog on its next append).
    if (!plog->sealed()) to_seal.push_back(plog);
    candidates.push_back(Candidate{shard, index, plog->size()});
  });
  for (Plog* plog : to_seal) {
    SL_RETURN_NOT_OK(plog->Seal());
  }

  RunStats stats;
  uint64_t hot_capacity = hot_->TotalCapacity();
  for (const Candidate& c : candidates) {
    if (hot_capacity > 0 &&
        static_cast<double>(hot_->AllocatedBytes()) / hot_capacity <
            policy_.hot_watermark) {
      break;  // hot pool already drained enough
    }
    SL_RETURN_NOT_OK(plogs_->MigratePlog(c.shard, c.index, cold_));
    ++stats.migrated_plogs;
    stats.migrated_bytes += c.bytes;
    migrated_plogs->Increment();
    migrated_bytes->Increment(c.bytes);
  }
  return stats;
}

}  // namespace streamlake::storage
