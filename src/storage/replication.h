#ifndef STREAMLAKE_STORAGE_REPLICATION_H_
#define STREAMLAKE_STORAGE_REPLICATION_H_

#include <string>

#include "sim/network_model.h"
#include "storage/object_store.h"

namespace streamlake::storage {

/// \brief The replication service of the data service layer (Section III):
/// "periodical replications to remote sites for backup and recovery."
///
/// Incrementally mirrors an object namespace to a remote site's object
/// store over a WAN link: new/changed objects ship, deleted objects are
/// pruned. RestoreObject recovers a lost object from the remote copy.
class RemoteReplicationService {
 public:
  /// `wan` models the inter-site link (typically TCP, not RDMA).
  RemoteReplicationService(ObjectStore* primary, ObjectStore* remote,
                           sim::NetworkModel* wan, kv::KvStore* state)
      : primary_(primary), remote_(remote), wan_(wan), state_(state) {}

  struct RunStats {
    uint64_t objects_shipped = 0;
    uint64_t bytes_shipped = 0;
    uint64_t objects_pruned = 0;
    uint64_t objects_unchanged = 0;
  };

  /// One replication cycle over every object under `prefix`.
  /// Change detection uses content CRCs recorded in the state store, so
  /// unchanged objects cost one local read but no WAN transfer.
  Result<RunStats> Replicate(const std::string& prefix);

  /// Disaster recovery: copy one object back from the remote site.
  Status RestoreObject(const std::string& path);

 private:
  std::string StateKey(const std::string& path) const {
    return "repl/" + path;
  }

  ObjectStore* primary_;
  ObjectStore* remote_;
  sim::NetworkModel* wan_;
  kv::KvStore* state_;
};

}  // namespace streamlake::storage

#endif  // STREAMLAKE_STORAGE_REPLICATION_H_
