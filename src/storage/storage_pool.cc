#include "storage/storage_pool.h"

#include <set>

namespace streamlake::storage {

StoragePool::StoragePool(std::string name, sim::MediaType media,
                         sim::SimClock* clock)
    : name_(std::move(name)), media_(media), clock_(clock) {
  auto& registry = MetricsRegistry::Global();
  const std::string prefix = "storage.pool." + name_ + ".";
  alloc_ops_ = registry.GetCounter(prefix + "alloc_ops");
  alloc_bytes_ = registry.GetCounter(prefix + "alloc_bytes");
  freed_bytes_ = registry.GetCounter(prefix + "freed_bytes");
  allocated_gauge_ = registry.GetGauge(prefix + "allocated_bytes");
  tier_read_bytes_ = registry.GetGauge(prefix + "device_read_bytes");
  tier_write_bytes_ = registry.GetGauge(prefix + "device_write_bytes");
}

uint32_t StoragePool::AddDevice(uint32_t node_id, uint64_t capacity_bytes) {
  MutexLock lock(&mu_);
  uint32_t id = static_cast<uint32_t>(devices_.size());
  devices_.push_back(std::make_unique<BlockDevice>(id, node_id, capacity_bytes,
                                                   media_, clock_));
  states_.emplace_back();
  return id;
}

void StoragePool::AddCluster(uint32_t nodes, uint32_t disks_per_node,
                             uint64_t capacity_per_disk) {
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t d = 0; d < disks_per_node; ++d) {
      AddDevice(n, capacity_per_disk);
    }
  }
}

bool StoragePool::TryAllocate(size_t idx, uint64_t size, Extent* out) {
  DeviceState& state = states_[idx];
  BlockDevice* dev = devices_[idx].get();
  // First fit from the free list.
  for (auto it = state.free_list.begin(); it != state.free_list.end(); ++it) {
    if (it->second >= size) {
      out->device = dev;
      out->offset = it->first;
      out->size = size;
      if (it->second == size) {
        state.free_list.erase(it);
      } else {
        it->first += size;
        it->second -= size;
      }
      return true;
    }
  }
  if (state.next_offset + size <= dev->capacity()) {
    out->device = dev;
    out->offset = state.next_offset;
    out->size = size;
    state.next_offset += size;
    return true;
  }
  return false;
}

Result<std::vector<Extent>> StoragePool::AllocateExtents(int count,
                                                         uint64_t size,
                                                         bool distinct_nodes) {
  MutexLock lock(&mu_);
  if (devices_.empty()) return Status::ResourceExhausted("pool has no disks");
  std::vector<Extent> extents;
  std::set<uint32_t> used_nodes;
  std::set<uint32_t> used_devices;
  size_t start = rr_cursor_;
  rr_cursor_ = (rr_cursor_ + 1) % devices_.size();

  for (int e = 0; e < count; ++e) {
    bool placed = false;
    for (size_t probe = 0; probe < devices_.size(); ++probe) {
      size_t idx = (start + e + probe) % devices_.size();
      BlockDevice* dev = devices_[idx].get();
      if (dev->failed()) continue;  // never place data on a failed disk
      if (used_devices.count(dev->id())) continue;
      if (distinct_nodes && used_nodes.count(dev->node_id())) continue;
      Extent extent;
      if (TryAllocate(idx, size, &extent)) {
        used_devices.insert(dev->id());
        used_nodes.insert(dev->node_id());
        extents.push_back(extent);
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Roll back partial allocation.
      for (const Extent& ext : extents) {
        states_[ext.device->id()].free_list.emplace_back(ext.offset, ext.size);
      }
      return Status::ResourceExhausted(
          "cannot place " + std::to_string(count) + " extents of " +
          std::to_string(size) + "B in pool " + name_);
    }
  }
  allocated_bytes_ += static_cast<uint64_t>(count) * size;
  alloc_ops_->Increment();
  alloc_bytes_->Increment(static_cast<uint64_t>(count) * size);
  allocated_gauge_->Set(static_cast<int64_t>(allocated_bytes_));
  return extents;
}

void StoragePool::FreeExtent(const Extent& extent) {
  MutexLock lock(&mu_);
  states_[extent.device->id()].free_list.emplace_back(extent.offset,
                                                      extent.size);
  allocated_bytes_ -= extent.size;
  freed_bytes_->Increment(extent.size);
  allocated_gauge_->Set(static_cast<int64_t>(allocated_bytes_));
}

uint64_t StoragePool::TotalCapacity() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& dev : devices_) total += dev->capacity();
  return total;
}

uint64_t StoragePool::AllocatedBytes() const {
  MutexLock lock(&mu_);
  return allocated_bytes_;
}

void StoragePool::SetNodeFailed(uint32_t node_id, bool failed) {
  MutexLock lock(&mu_);
  for (auto& dev : devices_) {
    if (dev->node_id() == node_id) dev->SetFailed(failed);
  }
}

sim::DeviceStats StoragePool::AggregateStats() const {
  MutexLock lock(&mu_);
  sim::DeviceStats total;
  for (const auto& dev : devices_) {
    sim::DeviceStats s = dev->device_model().stats();
    total.read_ops += s.read_ops;
    total.write_ops += s.write_ops;
    total.bytes_read += s.bytes_read;
    total.bytes_written += s.bytes_written;
    total.busy_ns += s.busy_ns;
  }
  // Export the tier's cumulative device I/O so registry snapshots carry
  // per-pool numbers (sampled whenever the pool is inspected).
  tier_read_bytes_->Set(static_cast<int64_t>(total.bytes_read));
  tier_write_bytes_->Set(static_cast<int64_t>(total.bytes_written));
  return total;
}

}  // namespace streamlake::storage
