#ifndef STREAMLAKE_ACCESS_NAS_SERVICE_H_
#define STREAMLAKE_ACCESS_NAS_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "access/access_control.h"
#include "common/mutex.h"
#include "sim/clock.h"
#include "storage/object_store.h"

namespace streamlake::access {

/// POSIX-ish file attributes surfaced by the NAS protocols.
struct FileAttributes {
  uint64_t size = 0;
  int64_t mtime = 0;
  bool is_directory = false;
};

/// \brief The NAS service of the data access layer ("NAS services via NFS
/// and SMB protocols", Section III): handle-based open/read-at/write-at/
/// close file semantics over the object namespace, with directories and
/// attributes. Writes buffer per handle and persist on Close (like an NFS
/// commit).
class NasService {
 public:
  NasService(storage::ObjectStore* objects, AccessController* acl,
             sim::SimClock* clock)
      : objects_(objects), acl_(acl), clock_(clock) {}

  Status MakeDirectory(const std::string& token, const std::string& path);

  /// Open (creating if absent when `for_write`); returns a file handle.
  Result<uint64_t> Open(const std::string& token, const std::string& path,
                        bool for_write);

  Result<Bytes> ReadAt(uint64_t handle, uint64_t offset, uint64_t length);
  Status WriteAt(uint64_t handle, uint64_t offset, ByteView data);

  /// Flush buffered writes and release the handle.
  Status Close(uint64_t handle);

  Status Remove(const std::string& token, const std::string& path);
  Result<FileAttributes> GetAttributes(const std::string& token,
                                       const std::string& path);
  Result<std::vector<std::string>> ReadDirectory(const std::string& token,
                                                 const std::string& path);

  size_t open_handles() const;

 private:
  struct OpenFile {
    std::string path;
    Bytes contents;
    bool writable = false;
    bool dirty = false;
  };

  static std::string NasPath(const std::string& path) { return "/nas" + path; }

  storage::ObjectStore* objects_;
  AccessController* acl_;
  sim::SimClock* clock_;
  mutable Mutex mu_{LockRank::kNasService, "access.nas_service"};
  std::map<uint64_t, OpenFile> handles_ GUARDED_BY(mu_);
  std::map<std::string, int64_t> mtimes_ GUARDED_BY(mu_);
  uint64_t next_handle_ GUARDED_BY(mu_) = 1;
};

}  // namespace streamlake::access

#endif  // STREAMLAKE_ACCESS_NAS_SERVICE_H_
