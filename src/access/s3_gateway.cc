#include "access/s3_gateway.h"

namespace streamlake::access {

Status S3Gateway::Gate(const std::string& token, AdmitOp op, uint64_t bytes) {
  if (admission_ == nullptr) return Status::OK();
  // The caller already passed the ACL check, so Authenticate cannot fail
  // here — but keep the error path for belt and braces.
  SL_ASSIGN_OR_RETURN(std::string tenant, acl_->Authenticate(token));
  return admission_->Admit(tenant, op, 1, bytes).status();
}

Status S3Gateway::CreateBucket(const std::string& token,
                               const std::string& bucket) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(bucket),
                                      Permission::kWrite));
  if (objects_->Exists(Resource(bucket) + ".bucket")) {
    return Status::AlreadyExists("bucket " + bucket);
  }
  return objects_->Write(Resource(bucket) + ".bucket", ByteView());
}

Status S3Gateway::PutObject(const std::string& token,
                            const std::string& bucket, const std::string& key,
                            ByteView data) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(bucket),
                                      Permission::kWrite));
  if (!objects_->Exists(Resource(bucket) + ".bucket")) {
    return Status::NotFound("bucket " + bucket);
  }
  SL_RETURN_NOT_OK(Gate(token, AdmitOp::kObjectPut, data.size()));
  network_->ChargeTransfer(data.size());
  return objects_->Write(Path(bucket, key), data);
}

Result<Bytes> S3Gateway::GetObject(const std::string& token,
                                   const std::string& bucket,
                                   const std::string& key) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(bucket),
                                      Permission::kRead));
  // Meter egress bytes before paying the storage read: the size comes
  // from the object index, so a shed request costs no data I/O.
  SL_ASSIGN_OR_RETURN(uint64_t size, objects_->Size(Path(bucket, key)));
  SL_RETURN_NOT_OK(Gate(token, AdmitOp::kObjectGet, size));
  SL_ASSIGN_OR_RETURN(Bytes data, objects_->Read(Path(bucket, key)));
  network_->ChargeTransfer(data.size());
  return data;
}

Status S3Gateway::DeleteObject(const std::string& token,
                               const std::string& bucket,
                               const std::string& key) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(bucket),
                                      Permission::kWrite));
  SL_RETURN_NOT_OK(Gate(token, AdmitOp::kObjectPut, 0));
  return objects_->Delete(Path(bucket, key));
}

Result<std::vector<std::string>> S3Gateway::ListObjects(
    const std::string& token, const std::string& bucket,
    const std::string& prefix) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(bucket),
                                      Permission::kRead));
  std::vector<std::string> keys;
  std::string base = Resource(bucket);
  for (const std::string& path : objects_->List(base + prefix)) {
    std::string key = path.substr(base.size());
    if (key == ".bucket") continue;
    keys.push_back(std::move(key));
  }
  return keys;
}

Result<uint64_t> S3Gateway::HeadObject(const std::string& token,
                                       const std::string& bucket,
                                       const std::string& key) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(bucket),
                                      Permission::kRead));
  return objects_->Size(Path(bucket, key));
}

}  // namespace streamlake::access
