#ifndef STREAMLAKE_ACCESS_S3_GATEWAY_H_
#define STREAMLAKE_ACCESS_S3_GATEWAY_H_

#include <string>
#include <vector>

#include "access/access_control.h"
#include "common/admission_gate.h"
#include "sim/network_model.h"
#include "storage/object_store.h"

namespace streamlake::access {

/// \brief The object service of the data access layer ("an object service
/// via S3 protocol", Section III): bucket/key semantics over the object
/// store, every request authenticated and authorized through the ACLs,
/// and request/response payloads charged to the client-facing network.
///
/// With an admission gate attached, every data-path request is metered
/// against the authenticated principal's quota after the ACL check:
/// PutObject/DeleteObject as kObjectPut (ingress bytes), GetObject as
/// kObjectGet (egress bytes). Over-quota requests shed with
/// kResourceExhausted before touching storage. Control-plane calls
/// (CreateBucket, ListObjects, HeadObject) are not metered.
class S3Gateway {
 public:
  S3Gateway(storage::ObjectStore* objects, AccessController* acl,
            sim::NetworkModel* front_network,
            AdmissionGate* admission = nullptr)
      : objects_(objects), acl_(acl), network_(front_network),
        admission_(admission) {}

  Status CreateBucket(const std::string& token, const std::string& bucket);
  Status PutObject(const std::string& token, const std::string& bucket,
                   const std::string& key, ByteView data);
  Result<Bytes> GetObject(const std::string& token, const std::string& bucket,
                          const std::string& key);
  Status DeleteObject(const std::string& token, const std::string& bucket,
                      const std::string& key);
  Result<std::vector<std::string>> ListObjects(const std::string& token,
                                               const std::string& bucket,
                                               const std::string& prefix = "");
  Result<uint64_t> HeadObject(const std::string& token,
                              const std::string& bucket,
                              const std::string& key);

 private:
  static std::string Resource(const std::string& bucket) {
    return "/s3/" + bucket + "/";
  }
  static std::string Path(const std::string& bucket, const std::string& key) {
    return "/s3/" + bucket + "/" + key;
  }
  /// Meter one request against the authenticated principal's quota.
  Status Gate(const std::string& token, AdmitOp op, uint64_t bytes);

  storage::ObjectStore* objects_;
  AccessController* acl_;
  sim::NetworkModel* network_;
  AdmissionGate* admission_;  // optional per-tenant QoS gate
};

}  // namespace streamlake::access

#endif  // STREAMLAKE_ACCESS_S3_GATEWAY_H_
