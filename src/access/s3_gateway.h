#ifndef STREAMLAKE_ACCESS_S3_GATEWAY_H_
#define STREAMLAKE_ACCESS_S3_GATEWAY_H_

#include <string>
#include <vector>

#include "access/access_control.h"
#include "sim/network_model.h"
#include "storage/object_store.h"

namespace streamlake::access {

/// \brief The object service of the data access layer ("an object service
/// via S3 protocol", Section III): bucket/key semantics over the object
/// store, every request authenticated and authorized through the ACLs,
/// and request/response payloads charged to the client-facing network.
class S3Gateway {
 public:
  S3Gateway(storage::ObjectStore* objects, AccessController* acl,
            sim::NetworkModel* front_network)
      : objects_(objects), acl_(acl), network_(front_network) {}

  Status CreateBucket(const std::string& token, const std::string& bucket);
  Status PutObject(const std::string& token, const std::string& bucket,
                   const std::string& key, ByteView data);
  Result<Bytes> GetObject(const std::string& token, const std::string& bucket,
                          const std::string& key);
  Status DeleteObject(const std::string& token, const std::string& bucket,
                      const std::string& key);
  Result<std::vector<std::string>> ListObjects(const std::string& token,
                                               const std::string& bucket,
                                               const std::string& prefix = "");
  Result<uint64_t> HeadObject(const std::string& token,
                              const std::string& bucket,
                              const std::string& key);

 private:
  static std::string Resource(const std::string& bucket) {
    return "/s3/" + bucket + "/";
  }
  static std::string Path(const std::string& bucket, const std::string& key) {
    return "/s3/" + bucket + "/" + key;
  }

  storage::ObjectStore* objects_;
  AccessController* acl_;
  sim::NetworkModel* network_;
};

}  // namespace streamlake::access

#endif  // STREAMLAKE_ACCESS_S3_GATEWAY_H_
