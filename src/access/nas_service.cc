#include "access/nas_service.h"

#include <algorithm>

namespace streamlake::access {

Status NasService::MakeDirectory(const std::string& token,
                                 const std::string& path) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, NasPath(path),
                                      Permission::kWrite));
  std::string marker = NasPath(path) + "/.dir";
  if (objects_->Exists(marker)) return Status::AlreadyExists(path);
  {
    MutexLock lock(&mu_);
    mtimes_[NasPath(path)] = static_cast<int64_t>(clock_->NowSeconds());
  }
  // The marker write goes to the object store's device path; keep the
  // handle-table lock out of that I/O.
  return objects_->Write(marker, ByteView());
}

Result<uint64_t> NasService::Open(const std::string& token,
                                  const std::string& path, bool for_write) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(
      token, NasPath(path),
      for_write ? Permission::kWrite : Permission::kRead));
  OpenFile file;
  file.path = NasPath(path);
  file.writable = for_write;
  auto existing = objects_->Read(file.path);
  if (existing.ok()) {
    file.contents = std::move(*existing);
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  } else if (!for_write) {
    return Status::NotFound(path);
  }
  MutexLock lock(&mu_);
  uint64_t handle = next_handle_++;
  handles_[handle] = std::move(file);
  return handle;
}

Result<Bytes> NasService::ReadAt(uint64_t handle, uint64_t offset,
                                 uint64_t length) {
  MutexLock lock(&mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("stale handle");
  const Bytes& contents = it->second.contents;
  if (offset >= contents.size()) return Bytes();
  uint64_t len = std::min<uint64_t>(length, contents.size() - offset);
  return Bytes(contents.begin() + offset, contents.begin() + offset + len);
}

Status NasService::WriteAt(uint64_t handle, uint64_t offset, ByteView data) {
  MutexLock lock(&mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("stale handle");
  OpenFile& file = it->second;
  if (!file.writable) return Status::InvalidArgument("read-only handle");
  if (file.contents.size() < offset + data.size()) {
    file.contents.resize(offset + data.size());
  }
  std::memcpy(file.contents.data() + offset, data.data(), data.size());
  file.dirty = true;
  return Status::OK();
}

Status NasService::Close(uint64_t handle) {
  // Detach the file under the lock, flush outside it: the write-back is
  // device I/O and must not park every other NAS operation on mu_.
  OpenFile file;
  {
    MutexLock lock(&mu_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) return Status::InvalidArgument("stale handle");
    file = std::move(it->second);
    handles_.erase(it);
  }
  if (!file.dirty) return Status::OK();
  Status status = objects_->Write(file.path, ByteView(file.contents));
  if (status.ok()) {
    MutexLock lock(&mu_);
    mtimes_[file.path] = static_cast<int64_t>(clock_->NowSeconds());
  }
  return status;
}

Status NasService::Remove(const std::string& token, const std::string& path) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, NasPath(path),
                                      Permission::kWrite));
  MutexLock lock(&mu_);
  mtimes_.erase(NasPath(path));
  return objects_->Delete(NasPath(path));
}

Result<FileAttributes> NasService::GetAttributes(const std::string& token,
                                                 const std::string& path) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, NasPath(path),
                                      Permission::kRead));
  FileAttributes attrs;
  if (objects_->Exists(NasPath(path) + "/.dir")) {
    attrs.is_directory = true;
  } else {
    SL_ASSIGN_OR_RETURN(attrs.size, objects_->Size(NasPath(path)));
  }
  MutexLock lock(&mu_);
  auto it = mtimes_.find(NasPath(path));
  if (it != mtimes_.end()) attrs.mtime = it->second;
  return attrs;
}

Result<std::vector<std::string>> NasService::ReadDirectory(
    const std::string& token, const std::string& path) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, NasPath(path),
                                      Permission::kRead));
  std::string base = NasPath(path) + "/";
  if (!objects_->Exists(base + ".dir")) return Status::NotFound(path);
  std::vector<std::string> names;
  for (const std::string& full : objects_->List(base)) {
    std::string rest = full.substr(base.size());
    if (rest == ".dir") continue;
    // Only direct children; nested paths report their first segment.
    size_t slash = rest.find('/');
    std::string name = slash == std::string::npos ? rest : rest.substr(0, slash);
    if (names.empty() || names.back() != name) names.push_back(name);
  }
  return names;
}

size_t NasService::open_handles() const {
  MutexLock lock(&mu_);
  return handles_.size();
}

}  // namespace streamlake::access
