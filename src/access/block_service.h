#ifndef STREAMLAKE_ACCESS_BLOCK_SERVICE_H_
#define STREAMLAKE_ACCESS_BLOCK_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "access/access_control.h"
#include "common/admission_gate.h"
#include "common/mutex.h"
#include "storage/storage_pool.h"

namespace streamlake::access {

/// \brief The block service of the data access layer ("a block service via
/// standard iSCSI access", Section III): LUN-addressed virtual volumes
/// carved from the storage pools, thin-provisioned (a pool feature listed
/// in Section III) — physical extents are allocated on first write of
/// each chunk, with per-volume replication.
///
/// With an admission gate attached, Write/Read are metered against the
/// authenticated principal's quota (kBlockWrite / kBlockRead with the
/// transfer's byte count) after the ACL check and before any pool I/O;
/// over-quota requests shed with kResourceExhausted. Volume lifecycle
/// calls are not metered.
class BlockService {
 public:
  BlockService(storage::StoragePool* pool, AccessController* acl,
               uint64_t chunk_bytes = 4ULL << 20, int replication = 2,
               AdmissionGate* admission = nullptr)
      : pool_(pool), acl_(acl), chunk_bytes_(chunk_bytes),
        replication_(replication), admission_(admission) {}

  /// Create a volume of `size_bytes`; returns its LUN id. No physical
  /// space is reserved yet (thin provisioning).
  Result<uint64_t> CreateVolume(const std::string& token, uint64_t size_bytes);

  Status DeleteVolume(const std::string& token, uint64_t lun);

  Status Write(const std::string& token, uint64_t lun, uint64_t offset,
               ByteView data);
  Result<Bytes> Read(const std::string& token, uint64_t lun, uint64_t offset,
                     uint64_t length);

  /// Physical bytes actually allocated for the volume (thin provisioning
  /// means this starts at 0 and grows with written chunks).
  Result<uint64_t> AllocatedBytes(const std::string& token,
                                  uint64_t lun) const;

 private:
  struct Volume {
    uint64_t size = 0;
    // chunk index -> one extent per replica; absent chunks read as zeros.
    std::map<uint64_t, std::vector<storage::Extent>> chunks;
  };

  static std::string Resource(uint64_t lun) {
    return "/block/lun-" + std::to_string(lun);
  }
  Result<std::vector<storage::Extent>*> EnsureChunk(Volume* volume,
                                                    uint64_t chunk)
      REQUIRES(mu_);
  /// Meter one transfer against the authenticated principal's quota.
  /// Called before taking mu_ (kAdmission outranks kBlockService).
  Status Gate(const std::string& token, AdmitOp op, uint64_t bytes);

  storage::StoragePool* pool_;
  AccessController* acl_;
  const uint64_t chunk_bytes_;
  const int replication_;
  AdmissionGate* admission_ = nullptr;  // optional per-tenant QoS gate
  mutable Mutex mu_{LockRank::kBlockService, "access.block_service"};
  std::map<uint64_t, Volume> volumes_ GUARDED_BY(mu_);
  uint64_t next_lun_ GUARDED_BY(mu_) = 1;
};

}  // namespace streamlake::access

#endif  // STREAMLAKE_ACCESS_BLOCK_SERVICE_H_
