#ifndef STREAMLAKE_ACCESS_ADMISSION_H_
#define STREAMLAKE_ACCESS_ADMISSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/admission_gate.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/token_bucket.h"
#include "sim/clock.h"

namespace streamlake::access {

/// Per-tenant quota: operation and byte rates with their burst allowances.
/// A zero rate with zero burst is a legal "deny everything" quota.
struct TenantQuota {
  double ops_per_sec = 1000;
  double bytes_per_sec = 16.0 * (1 << 20);
  double burst_ops = 100;
  double burst_bytes = 1 << 20;
};

/// Configuration of the admission layer (plumbed through
/// `core::StreamLakeOptions::admission`).
struct AdmissionConfig {
  /// Disabled: every request is admitted immediately with no accounting.
  bool enabled = false;

  /// Quota applied to a tenant on first contact (override per tenant with
  /// SetQuota before traffic starts).
  TenantQuota default_quota;

  /// When false, per-tenant buckets are bypassed and only the cluster
  /// buckets meter traffic — the "no isolation" ablation of
  /// bench_cluster_scale, where a hot tenant's flood queues everyone.
  bool per_tenant_isolation = true;

  /// Aggregate cluster capacity; 0 = unmetered. When both this and
  /// isolation are active, per-tenant quotas should sum to at most the
  /// cluster rate so the per-tenant buckets clip first.
  double cluster_ops_per_sec = 0;
  double cluster_bytes_per_sec = 0;
  double cluster_burst_ops = 1000;
  double cluster_burst_bytes = 16.0 * (1 << 20);

  /// Bounded admission queue, in operations: a request that would have to
  /// wait behind more than this many quota-paced ops (equivalently,
  /// longer than max_queue_depth / ops_per_sec seconds of virtual time)
  /// is shed with kResourceExhausted instead of queued. Also bounds the
  /// number of concurrently blocked AdmitBlocking callers per tenant.
  uint64_t max_queue_depth = 64;

  /// Per-tenant registry metrics (`tenant.<id>.*`) are created for the
  /// first this-many distinct tenants only; later tenants keep exact
  /// stats (TenantStats) but stay out of the registry, so a million-tenant
  /// simulation cannot flood the metric namespace.
  size_t max_tracked_tenants = 8;

  /// Wall-clock safety valve for AdmitBlocking: give up with kTimeout if
  /// the throttle window has not passed after this long (a stuck clock in
  /// a test must fail, not hang CI).
  uint64_t max_blocking_wall_ms = 30000;

  /// When true (default) the core facade hands the gate to the S3
  /// gateway, block service, and producers so every in-path request is
  /// metered where it enters. A front end that meters at its own door
  /// with explicit event times — workload::ClusterDriver — sets this
  /// false so each request pays admission exactly once.
  bool gate_access_layer = true;
};

/// \brief Per-tenant admission control with bounded queues — the QoS gate
/// in front of every access-layer entry point (S3 gateway, block service,
/// producers, the cluster driver's query/convert traffic).
///
/// Each tenant gets an ops bucket and a bytes bucket (`common::TokenBucket`)
/// refilled on the simulated clock; an optional cluster-wide pair meters
/// aggregate capacity. A request reserves tokens from every applicable
/// bucket: available now → admitted (wait 0); available within the
/// bounded queue window → admitted with a positive virtual wait the
/// caller charges to its latency (throttled); beyond the window → shed
/// with kResourceExhausted and nothing consumed. `AdmitBlocking` is the
/// closed-loop variant (producer backpressure): it waits for the window
/// on the simulated clock instead of reserving ahead, and sheds
/// immediately when the tenant's waiter queue is full.
///
/// Decisions are a pure function of the presented (tenant, time, cost)
/// sequence, so per-tenant counters are bit-deterministic for any driver
/// that feeds per-tenant-monotonic virtual times — the property the CI
/// fairness gate relies on.
///
/// Metrics: `access.admission.{admitted_ops,shed_ops,throttled_ops,
/// admitted_bytes,shed_bytes}`, histogram `access.admission.queue_wait_ns`,
/// gauge `access.admission.waiters`; per-tenant `tenant.<id>.{admitted_ops,
/// shed_ops,queue_wait_ns,latency_ns}` capped to the tracked-tenant set.
class AdmissionController : public AdmissionGate {
 public:
  AdmissionController(const AdmissionConfig& config, sim::SimClock* clock);

  /// Non-blocking gate at the current simulated time.
  Result<AdmitTicket> Admit(const std::string& tenant, AdmitOp op,
                            uint64_t ops, uint64_t bytes) override;

  /// Non-blocking gate at an explicit virtual time — the open-loop driver
  /// path: each arrival is judged at its own (per-tenant monotonic) event
  /// time, which keeps decisions independent of driver threading.
  Result<AdmitTicket> AdmitAt(const std::string& tenant, AdmitOp op,
                              uint64_t ops, uint64_t bytes, uint64_t now_ns);

  /// Blocking gate (backpressure). Re-checks the buckets at the simulated
  /// clock each wakeup; call Poll() after advancing the clock.
  Result<AdmitTicket> AdmitBlocking(const std::string& tenant, AdmitOp op,
                                    uint64_t ops, uint64_t bytes) override;

  /// Wake blocked AdmitBlocking callers to re-check their buckets (call
  /// after advancing the simulated clock past a throttle window).
  void Poll();

  /// Install a non-default quota. Replaces the tenant's buckets, so call
  /// before its traffic starts.
  void SetQuota(const std::string& tenant, const TenantQuota& quota);

  /// Record one admitted request's end-to-end latency (queue wait plus
  /// service) against the tenant's tracked histogram, if tracked.
  void RecordLatency(const std::string& tenant, uint64_t latency_ns);

  /// Exact per-tenant totals, kept for every tenant regardless of the
  /// tracked-metric cap.
  struct TenantStats {
    uint64_t offered_ops = 0;
    uint64_t admitted_ops = 0;
    uint64_t shed_ops = 0;
    uint64_t throttled_ops = 0;  // admitted with a positive queue wait
    uint64_t admitted_bytes = 0;
    uint64_t shed_bytes = 0;
    uint64_t wait_ns_total = 0;
  };
  TenantStats GetStats(const std::string& tenant) const;
  std::map<std::string, TenantStats> AllStats() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  struct TenantState {
    std::unique_ptr<TokenBucket> ops_bucket;    // null when !isolation
    std::unique_ptr<TokenBucket> bytes_bucket;  // null when !isolation
    uint64_t queue_ceiling_ns = 0;  // max_queue_depth in virtual time
    uint64_t waiters = 0;           // blocked AdmitBlocking callers
    TenantStats stats;
    // Registry metrics; null beyond the tracked-tenant cap.
    Counter* admitted_metric = nullptr;
    Counter* shed_metric = nullptr;
    Histogram* wait_metric = nullptr;
    Histogram* latency_metric = nullptr;
  };

  TenantState* GetTenantLocked(const std::string& tenant) REQUIRES(mu_);
  /// Reserve from every applicable bucket (tenant ops/bytes, cluster
  /// ops/bytes, in that order), rolling back on a queue-full refusal.
  /// Returns kNever on refusal, else the max wait across buckets.
  uint64_t ReserveAllLocked(TenantState* t, uint64_t ops, uint64_t bytes,
                            uint64_t now_ns) REQUIRES(mu_);
  /// All-or-nothing immediate consume (blocking path re-checks).
  bool TryConsumeAllLocked(TenantState* t, uint64_t ops, uint64_t bytes,
                           uint64_t now_ns) REQUIRES(mu_);
  void CountAdmittedLocked(TenantState* t, uint64_t ops, uint64_t bytes,
                           uint64_t wait_ns) REQUIRES(mu_);
  void CountShedLocked(TenantState* t, uint64_t ops, uint64_t bytes)
      REQUIRES(mu_);
  static std::string MetricName(const std::string& tenant,
                                const char* metric);

  const AdmissionConfig config_;
  sim::SimClock* const clock_;
  const uint64_t cluster_queue_ceiling_ns_;

  // Process-wide roll-ups; registered once in the constructor.
  Counter* const admitted_ops_metric_;
  Counter* const shed_ops_metric_;
  Counter* const throttled_ops_metric_;
  Counter* const admitted_bytes_metric_;
  Counter* const shed_bytes_metric_;
  Histogram* const wait_metric_;
  Gauge* const waiters_metric_;

  mutable Mutex mu_{LockRank::kAdmission, "access.admission"};
  CondVar throttle_cv_;
  std::unique_ptr<TokenBucket> cluster_ops_ GUARDED_BY(mu_);
  std::unique_ptr<TokenBucket> cluster_bytes_ GUARDED_BY(mu_);
  std::map<std::string, TenantState> tenants_ GUARDED_BY(mu_);
  size_t tracked_tenants_ GUARDED_BY(mu_) = 0;
};

}  // namespace streamlake::access

#endif  // STREAMLAKE_ACCESS_ADMISSION_H_
