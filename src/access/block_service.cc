#include "access/block_service.h"

#include <algorithm>

namespace streamlake::access {

Status BlockService::Gate(const std::string& token, AdmitOp op,
                          uint64_t bytes) {
  if (admission_ == nullptr) return Status::OK();
  SL_ASSIGN_OR_RETURN(std::string tenant, acl_->Authenticate(token));
  return admission_->Admit(tenant, op, 1, bytes).status();
}

Result<uint64_t> BlockService::CreateVolume(const std::string& token,
                                            uint64_t size_bytes) {
  SL_ASSIGN_OR_RETURN([[maybe_unused]] std::string principal,
                      acl_->Authenticate(token));
  if (size_bytes == 0) return Status::InvalidArgument("empty volume");
  MutexLock lock(&mu_);
  uint64_t lun = next_lun_++;
  volumes_[lun].size = size_bytes;
  return lun;
}

Status BlockService::DeleteVolume(const std::string& token, uint64_t lun) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(lun),
                                      Permission::kAdmin));
  MutexLock lock(&mu_);
  auto it = volumes_.find(lun);
  if (it == volumes_.end()) return Status::NotFound("lun " + std::to_string(lun));
  for (auto& [chunk, extents] : it->second.chunks) {
    for (const storage::Extent& extent : extents) pool_->FreeExtent(extent);
  }
  volumes_.erase(it);
  return Status::OK();
}

Result<std::vector<storage::Extent>*> BlockService::EnsureChunk(
    Volume* volume, uint64_t chunk) {
  auto it = volume->chunks.find(chunk);
  if (it != volume->chunks.end()) return &it->second;
  // First write to this chunk: allocate its extents now (thin provision).
  auto extents = pool_->AllocateExtents(replication_, chunk_bytes_,
                                        /*distinct_nodes=*/true);
  if (!extents.ok()) {
    extents = pool_->AllocateExtents(replication_, chunk_bytes_,
                                     /*distinct_nodes=*/false);
  }
  if (!extents.ok()) return extents.status();
  auto [inserted, ok] = volume->chunks.emplace(chunk, std::move(*extents));
  return &inserted->second;
}

Status BlockService::Write(const std::string& token, uint64_t lun,
                           uint64_t offset, ByteView data) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(lun),
                                      Permission::kWrite));
  SL_RETURN_NOT_OK(Gate(token, AdmitOp::kBlockWrite, data.size()));
  MutexLock lock(&mu_);
  auto it = volumes_.find(lun);
  if (it == volumes_.end()) return Status::NotFound("lun " + std::to_string(lun));
  Volume& volume = it->second;
  if (offset + data.size() > volume.size) {
    return Status::InvalidArgument("write past end of volume");
  }
  uint64_t pos = 0;
  while (pos < data.size()) {
    uint64_t chunk = (offset + pos) / chunk_bytes_;
    uint64_t in_chunk = (offset + pos) % chunk_bytes_;
    uint64_t len = std::min<uint64_t>(chunk_bytes_ - in_chunk,
                                      data.size() - pos);
    SL_ASSIGN_OR_RETURN(auto* extents, EnsureChunk(&volume, chunk));
    for (const storage::Extent& extent : *extents) {
      SL_RETURN_NOT_OK(extent.device->Write(extent.offset + in_chunk,
                                            data.subview(pos, len)));
    }
    pos += len;
  }
  return Status::OK();
}

Result<Bytes> BlockService::Read(const std::string& token, uint64_t lun,
                                 uint64_t offset, uint64_t length) {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(lun),
                                      Permission::kRead));
  SL_RETURN_NOT_OK(Gate(token, AdmitOp::kBlockRead, length));
  MutexLock lock(&mu_);
  auto it = volumes_.find(lun);
  if (it == volumes_.end()) return Status::NotFound("lun " + std::to_string(lun));
  Volume& volume = it->second;
  if (offset + length > volume.size) {
    return Status::InvalidArgument("read past end of volume");
  }
  Bytes out(length, 0);
  uint64_t pos = 0;
  while (pos < length) {
    uint64_t chunk = (offset + pos) / chunk_bytes_;
    uint64_t in_chunk = (offset + pos) % chunk_bytes_;
    uint64_t len = std::min<uint64_t>(chunk_bytes_ - in_chunk, length - pos);
    auto chunk_it = volume.chunks.find(chunk);
    if (chunk_it != volume.chunks.end()) {
      // Read from the first healthy replica.
      Status last = Status::IOError("no replicas");
      bool done = false;
      for (const storage::Extent& extent : chunk_it->second) {
        auto data = extent.device->Read(extent.offset + in_chunk, len);
        if (data.ok()) {
          std::memcpy(out.data() + pos, data->data(), len);
          done = true;
          break;
        }
        last = data.status();
      }
      if (!done) return last;
    }
    // Unallocated chunks read as zeros (thin provisioning).
    pos += len;
  }
  return out;
}

Result<uint64_t> BlockService::AllocatedBytes(const std::string& token,
                                              uint64_t lun) const {
  SL_RETURN_NOT_OK(acl_->CheckRequest(token, Resource(lun),
                                      Permission::kRead));
  MutexLock lock(&mu_);
  auto it = volumes_.find(lun);
  if (it == volumes_.end()) return Status::NotFound("lun " + std::to_string(lun));
  return it->second.chunks.size() * chunk_bytes_ * replication_;
}

}  // namespace streamlake::access
