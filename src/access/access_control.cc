#include "access/access_control.h"

#include "common/hash.h"

namespace streamlake::access {

std::string AccessController::CreatePrincipal(const std::string& name) {
  MutexLock lock(&mu_);
  auto existing = principal_to_token_.find(name);
  if (existing != principal_to_token_.end()) return existing->second;
  // Token: an unguessable-looking hash of name + counter (simulation-
  // grade; a deployment would use real credentials).
  std::string seed = name + "#" + std::to_string(next_token_++);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tok-%016llx",
                static_cast<unsigned long long>(Hash64(ByteView(seed))));
  std::string token = buf;
  token_to_principal_[token] = name;
  principal_to_token_[name] = token;
  return token;
}

Status AccessController::RevokePrincipal(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = principal_to_token_.find(name);
  if (it == principal_to_token_.end()) {
    return Status::NotFound("principal " + name);
  }
  token_to_principal_.erase(it->second);
  principal_to_token_.erase(it);
  acls_.erase(name);
  return Status::OK();
}

Status AccessController::Grant(const std::string& principal,
                               const std::string& resource_prefix,
                               Permission permission) {
  MutexLock lock(&mu_);
  if (!principal_to_token_.count(principal)) {
    return Status::NotFound("principal " + principal);
  }
  acls_[principal][resource_prefix] |= static_cast<uint8_t>(permission);
  return Status::OK();
}

Status AccessController::Revoke(const std::string& principal,
                                const std::string& resource_prefix,
                                Permission permission) {
  MutexLock lock(&mu_);
  auto principal_it = acls_.find(principal);
  if (principal_it == acls_.end()) {
    return Status::NotFound("no grants for " + principal);
  }
  auto it = principal_it->second.find(resource_prefix);
  if (it == principal_it->second.end()) {
    return Status::NotFound("no grant on " + resource_prefix);
  }
  it->second &= static_cast<uint8_t>(~static_cast<uint8_t>(permission));
  if (it->second == 0) principal_it->second.erase(it);
  return Status::OK();
}

Result<std::string> AccessController::Authenticate(
    const std::string& token) const {
  MutexLock lock(&mu_);
  auto it = token_to_principal_.find(token);
  if (it == token_to_principal_.end()) {
    return Status::InvalidArgument("invalid access token");
  }
  return it->second;
}

bool AccessController::Authorize(const std::string& principal,
                                 const std::string& resource,
                                 Permission permission) const {
  MutexLock lock(&mu_);
  auto principal_it = acls_.find(principal);
  if (principal_it == acls_.end()) return false;
  uint8_t wanted = static_cast<uint8_t>(permission);
  for (const auto& [prefix, bits] : principal_it->second) {
    if (resource.compare(0, prefix.size(), prefix) != 0) continue;
    if (bits & static_cast<uint8_t>(Permission::kAdmin)) return true;
    if (bits & wanted) return true;
  }
  return false;
}

Status AccessController::CheckRequest(const std::string& token,
                                      const std::string& resource,
                                      Permission permission) const {
  SL_ASSIGN_OR_RETURN(std::string principal, Authenticate(token));
  if (!Authorize(principal, resource, permission)) {
    return Status::InvalidArgument("access denied: " + principal + " on " +
                                   resource);
  }
  return Status::OK();
}

}  // namespace streamlake::access
