#ifndef STREAMLAKE_ACCESS_ACCESS_CONTROL_H_
#define STREAMLAKE_ACCESS_ACCESS_CONTROL_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"

namespace streamlake::access {

/// Operations an ACL can grant.
enum class Permission : uint8_t {
  kRead = 1,
  kWrite = 2,
  kAdmin = 4,
};

/// \brief Authentication + access control of the data access layer
/// (Section III): "managing authentication and access control lists,
/// which ensure that only valid user requests are translated into
/// internal requests".
///
/// Principals authenticate with opaque tokens; ACL entries grant
/// permissions on resource prefixes (longest-prefix match).
class AccessController {
 public:
  /// Register a principal; returns its access token.
  std::string CreatePrincipal(const std::string& name);

  /// Remove a principal and its grants.
  Status RevokePrincipal(const std::string& name);

  /// Grant `permission` on every resource under `resource_prefix`.
  Status Grant(const std::string& principal,
               const std::string& resource_prefix, Permission permission);

  Status Revoke(const std::string& principal,
                const std::string& resource_prefix, Permission permission);

  /// Token -> principal name; InvalidArgument for unknown tokens.
  Result<std::string> Authenticate(const std::string& token) const;

  /// Does `principal` hold `permission` on `resource`? Admin implies all.
  bool Authorize(const std::string& principal, const std::string& resource,
                 Permission permission) const;

  /// Authenticate + authorize in one call (the request gate).
  Status CheckRequest(const std::string& token, const std::string& resource,
                      Permission permission) const;

 private:
  mutable Mutex mu_{LockRank::kAccessControl, "access.acl"};
  std::map<std::string, std::string> token_to_principal_ GUARDED_BY(mu_);
  std::map<std::string, std::string> principal_to_token_ GUARDED_BY(mu_);
  // principal -> (resource prefix -> permission bits)
  std::map<std::string, std::map<std::string, uint8_t>> acls_
      GUARDED_BY(mu_);
  uint64_t next_token_ GUARDED_BY(mu_) = 1;
};

}  // namespace streamlake::access

#endif  // STREAMLAKE_ACCESS_ACCESS_CONTROL_H_
