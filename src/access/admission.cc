#include "access/admission.h"

#include <algorithm>
#include <chrono>

namespace streamlake::access {

namespace {

/// Virtual-time length of a `depth`-operation queue paced at `rate` ops/s.
uint64_t QueueCeilingNs(uint64_t depth, double rate) {
  if (rate <= 0) return 0;  // a rateless bucket cannot drain a queue
  double ns = depth / rate * 1e9;
  return ns > 1e18 ? static_cast<uint64_t>(1e18) : static_cast<uint64_t>(ns);
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         sim::SimClock* clock)
    : config_(config),
      clock_(clock),
      cluster_queue_ceiling_ns_(
          QueueCeilingNs(config.max_queue_depth, config.cluster_ops_per_sec)),
      admitted_ops_metric_(MetricsRegistry::Global().GetCounter(
          "access.admission.admitted_ops")),
      shed_ops_metric_(
          MetricsRegistry::Global().GetCounter("access.admission.shed_ops")),
      throttled_ops_metric_(MetricsRegistry::Global().GetCounter(
          "access.admission.throttled_ops")),
      admitted_bytes_metric_(MetricsRegistry::Global().GetCounter(
          "access.admission.admitted_bytes")),
      shed_bytes_metric_(
          MetricsRegistry::Global().GetCounter("access.admission.shed_bytes")),
      wait_metric_(MetricsRegistry::Global().GetHistogram(
          "access.admission.queue_wait_ns")),
      waiters_metric_(
          MetricsRegistry::Global().GetGauge("access.admission.waiters")) {
  if (config_.cluster_ops_per_sec > 0) {
    cluster_ops_ = std::make_unique<TokenBucket>(config_.cluster_ops_per_sec,
                                                 config_.cluster_burst_ops);
  }
  if (config_.cluster_bytes_per_sec > 0) {
    cluster_bytes_ = std::make_unique<TokenBucket>(
        config_.cluster_bytes_per_sec, config_.cluster_burst_bytes);
  }
}

std::string AdmissionController::MetricName(const std::string& tenant,
                                            const char* metric) {
  std::string safe = tenant;
  for (char& c : safe) {
    if (c == '.' || c == ' ') c = '_';
  }
  return "tenant." + safe + "." + metric;
}

AdmissionController::TenantState* AdmissionController::GetTenantLocked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return &it->second;
  TenantState state;
  if (config_.per_tenant_isolation) {
    state.ops_bucket = std::make_unique<TokenBucket>(
        config_.default_quota.ops_per_sec, config_.default_quota.burst_ops);
    state.bytes_bucket = std::make_unique<TokenBucket>(
        config_.default_quota.bytes_per_sec,
        config_.default_quota.burst_bytes);
    state.queue_ceiling_ns = QueueCeilingNs(config_.max_queue_depth,
                                            config_.default_quota.ops_per_sec);
  }
  if (tracked_tenants_ < config_.max_tracked_tenants) {
    ++tracked_tenants_;
    MetricsRegistry& registry = MetricsRegistry::Global();
    state.admitted_metric =
        registry.GetCounter(MetricName(tenant, "admitted_ops"));
    state.shed_metric = registry.GetCounter(MetricName(tenant, "shed_ops"));
    state.wait_metric =
        registry.GetHistogram(MetricName(tenant, "queue_wait_ns"));
    state.latency_metric =
        registry.GetHistogram(MetricName(tenant, "latency_ns"));
  }
  return &tenants_.emplace(tenant, std::move(state)).first->second;
}

void AdmissionController::SetQuota(const std::string& tenant,
                                   const TenantQuota& quota) {
  MutexLock lock(&mu_);
  TenantState* state = GetTenantLocked(tenant);
  if (!config_.per_tenant_isolation) return;
  state->ops_bucket =
      std::make_unique<TokenBucket>(quota.ops_per_sec, quota.burst_ops);
  state->bytes_bucket =
      std::make_unique<TokenBucket>(quota.bytes_per_sec, quota.burst_bytes);
  state->queue_ceiling_ns =
      QueueCeilingNs(config_.max_queue_depth, quota.ops_per_sec);
}

uint64_t AdmissionController::ReserveAllLocked(TenantState* t, uint64_t ops,
                                               uint64_t bytes,
                                               uint64_t now_ns) {
  uint64_t wait = 0;
  // Reservation order mirrors rollback: tenant ops -> tenant bytes ->
  // cluster ops -> cluster bytes; a refusal refunds everything reserved
  // so far, so a shed consumes no quota at all.
  if (t->ops_bucket != nullptr) {
    uint64_t w = t->ops_bucket->Reserve(now_ns, static_cast<double>(ops),
                                        t->queue_ceiling_ns);
    if (w == TokenBucket::kNever) return TokenBucket::kNever;
    wait = std::max(wait, w);
  }
  if (t->bytes_bucket != nullptr && bytes > 0) {
    uint64_t w = t->bytes_bucket->Reserve(now_ns, static_cast<double>(bytes),
                                          t->queue_ceiling_ns);
    if (w == TokenBucket::kNever) {
      if (t->ops_bucket != nullptr) {
        t->ops_bucket->Refund(static_cast<double>(ops));
      }
      return TokenBucket::kNever;
    }
    wait = std::max(wait, w);
  }
  if (cluster_ops_ != nullptr) {
    uint64_t w = cluster_ops_->Reserve(now_ns, static_cast<double>(ops),
                                       cluster_queue_ceiling_ns_);
    if (w == TokenBucket::kNever) {
      if (t->ops_bucket != nullptr) {
        t->ops_bucket->Refund(static_cast<double>(ops));
      }
      if (t->bytes_bucket != nullptr && bytes > 0) {
        t->bytes_bucket->Refund(static_cast<double>(bytes));
      }
      return TokenBucket::kNever;
    }
    wait = std::max(wait, w);
  }
  if (cluster_bytes_ != nullptr && bytes > 0) {
    uint64_t w = cluster_bytes_->Reserve(now_ns, static_cast<double>(bytes),
                                         cluster_queue_ceiling_ns_);
    if (w == TokenBucket::kNever) {
      if (t->ops_bucket != nullptr) {
        t->ops_bucket->Refund(static_cast<double>(ops));
      }
      if (t->bytes_bucket != nullptr && bytes > 0) {
        t->bytes_bucket->Refund(static_cast<double>(bytes));
      }
      if (cluster_ops_ != nullptr) {
        cluster_ops_->Refund(static_cast<double>(ops));
      }
      return TokenBucket::kNever;
    }
    wait = std::max(wait, w);
  }
  return wait;
}

bool AdmissionController::TryConsumeAllLocked(TenantState* t, uint64_t ops,
                                              uint64_t bytes,
                                              uint64_t now_ns) {
  double ops_d = static_cast<double>(ops);
  double bytes_d = static_cast<double>(bytes);
  if (t->ops_bucket != nullptr && !t->ops_bucket->TryConsume(now_ns, ops_d)) {
    return false;
  }
  if (t->bytes_bucket != nullptr && bytes > 0 &&
      !t->bytes_bucket->TryConsume(now_ns, bytes_d)) {
    if (t->ops_bucket != nullptr) t->ops_bucket->Refund(ops_d);
    return false;
  }
  if (cluster_ops_ != nullptr && !cluster_ops_->TryConsume(now_ns, ops_d)) {
    if (t->ops_bucket != nullptr) t->ops_bucket->Refund(ops_d);
    if (t->bytes_bucket != nullptr && bytes > 0) {
      t->bytes_bucket->Refund(bytes_d);
    }
    return false;
  }
  if (cluster_bytes_ != nullptr && bytes > 0 &&
      !cluster_bytes_->TryConsume(now_ns, bytes_d)) {
    if (t->ops_bucket != nullptr) t->ops_bucket->Refund(ops_d);
    if (t->bytes_bucket != nullptr && bytes > 0) {
      t->bytes_bucket->Refund(bytes_d);
    }
    if (cluster_ops_ != nullptr) cluster_ops_->Refund(ops_d);
    return false;
  }
  return true;
}

void AdmissionController::CountAdmittedLocked(TenantState* t, uint64_t ops,
                                              uint64_t bytes,
                                              uint64_t wait_ns) {
  t->stats.offered_ops += ops;
  t->stats.admitted_ops += ops;
  t->stats.admitted_bytes += bytes;
  t->stats.wait_ns_total += wait_ns;
  admitted_ops_metric_->Increment(ops);
  admitted_bytes_metric_->Increment(bytes);
  wait_metric_->Record(wait_ns);
  if (wait_ns > 0) {
    t->stats.throttled_ops += ops;
    throttled_ops_metric_->Increment(ops);
  }
  if (t->admitted_metric != nullptr) t->admitted_metric->Increment(ops);
  if (t->wait_metric != nullptr) t->wait_metric->Record(wait_ns);
}

void AdmissionController::CountShedLocked(TenantState* t, uint64_t ops,
                                          uint64_t bytes) {
  t->stats.offered_ops += ops;
  t->stats.shed_ops += ops;
  t->stats.shed_bytes += bytes;
  shed_ops_metric_->Increment(ops);
  shed_bytes_metric_->Increment(bytes);
  if (t->shed_metric != nullptr) t->shed_metric->Increment(ops);
}

Result<AdmitTicket> AdmissionController::Admit(const std::string& tenant,
                                               AdmitOp op, uint64_t ops,
                                               uint64_t bytes) {
  return AdmitAt(tenant, op, ops, bytes, clock_->NowNanos());
}

Result<AdmitTicket> AdmissionController::AdmitAt(const std::string& tenant,
                                                 AdmitOp op, uint64_t ops,
                                                 uint64_t bytes,
                                                 uint64_t now_ns) {
  if (!config_.enabled) return AdmitTicket{};
  MutexLock lock(&mu_);
  TenantState* state = GetTenantLocked(tenant);
  uint64_t wait = ReserveAllLocked(state, ops, bytes, now_ns);
  if (wait == TokenBucket::kNever) {
    CountShedLocked(state, ops, bytes);
    return Status::ResourceExhausted("admission queue full: tenant '" +
                                     tenant + "' " + AdmitOpName(op));
  }
  CountAdmittedLocked(state, ops, bytes, wait);
  return AdmitTicket{wait};
}

Result<AdmitTicket> AdmissionController::AdmitBlocking(
    const std::string& tenant, AdmitOp op, uint64_t ops, uint64_t bytes) {
  if (!config_.enabled) return AdmitTicket{};
  const uint64_t start_ns = clock_->NowNanos();
  const auto wall_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.max_blocking_wall_ms);
  MutexLock lock(&mu_);
  TenantState* state = GetTenantLocked(tenant);
  if (state->waiters >= config_.max_queue_depth) {
    // The waiter queue is full: shed right away rather than pile on — a
    // caller must never hang behind an unbounded crowd.
    CountShedLocked(state, ops, bytes);
    return Status::ResourceExhausted("admission waiters full: tenant '" +
                                     tenant + "' " + AdmitOpName(op));
  }
  // A request no refill can ever back (cost above burst, or a rateless
  // empty bucket) must shed, not block until the wall timeout.
  uint64_t probe_ns = clock_->NowNanos();
  double ops_d = static_cast<double>(ops);
  double bytes_d = static_cast<double>(bytes);
  bool never =
      (state->ops_bucket != nullptr &&
       state->ops_bucket->NanosUntilAvailable(probe_ns, ops_d) ==
           TokenBucket::kNever) ||
      (state->bytes_bucket != nullptr && bytes > 0 &&
       state->bytes_bucket->NanosUntilAvailable(probe_ns, bytes_d) ==
           TokenBucket::kNever) ||
      (cluster_ops_ != nullptr &&
       cluster_ops_->NanosUntilAvailable(probe_ns, ops_d) ==
           TokenBucket::kNever) ||
      (cluster_bytes_ != nullptr && bytes > 0 &&
       cluster_bytes_->NanosUntilAvailable(probe_ns, bytes_d) ==
           TokenBucket::kNever);
  if (never) {
    CountShedLocked(state, ops, bytes);
    return Status::ResourceExhausted("request exceeds quota burst: tenant '" +
                                     tenant + "' " + AdmitOpName(op));
  }
  bool waiting = false;
  for (;;) {
    uint64_t now = clock_->NowNanos();
    if (TryConsumeAllLocked(state, ops, bytes, now)) {
      if (waiting) {
        --state->waiters;
        waiters_metric_->Add(-1);
      }
      uint64_t wait_ns = now - start_ns;
      CountAdmittedLocked(state, ops, bytes, wait_ns);
      return AdmitTicket{wait_ns};
    }
    if (!waiting) {
      waiting = true;
      ++state->waiters;
      waiters_metric_->Add(1);
    }
    if (std::chrono::steady_clock::now() >= wall_deadline) {
      --state->waiters;
      waiters_metric_->Add(-1);
      CountShedLocked(state, ops, bytes);
      return Status::Timeout("admission backpressure wall timeout: tenant '" +
                             tenant + "' " + AdmitOpName(op));
    }
    // Re-check on every Poll() (clock advanced) or millisecond tick; the
    // wait releases mu_, so pollers and other admitters make progress.
    throttle_cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
  }
}

void AdmissionController::Poll() { throttle_cv_.NotifyAll(); }

void AdmissionController::RecordLatency(const std::string& tenant,
                                        uint64_t latency_ns) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  if (it->second.latency_metric != nullptr) {
    it->second.latency_metric->Record(latency_ns);
  }
}

AdmissionController::TenantStats AdmissionController::GetStats(
    const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

std::map<std::string, AdmissionController::TenantStats>
AdmissionController::AllStats() const {
  MutexLock lock(&mu_);
  std::map<std::string, TenantStats> out;
  for (const auto& [tenant, state] : tenants_) out.emplace(tenant, state.stats);
  return out;
}

}  // namespace streamlake::access
