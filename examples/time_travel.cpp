// Lakehouse ACID features: snapshot isolation, time travel, job re-runs
// from historical snapshots, UPDATE/DELETE, and drop-soft / restore.
//
// Run: ./build/examples/time_travel

#include <cstdio>

#include "core/streamlake.h"

using namespace streamlake;

namespace {

format::Row Order(int64_t id, const std::string& status, int64_t ts) {
  format::Row row;
  row.fields = {format::Value(id), format::Value(status), format::Value(ts)};
  return row;
}

int64_t CountRows(table::Table* table, table::SelectOptions options = {}) {
  query::QuerySpec spec;
  spec.aggregates = {query::AggregateSpec::CountStar()};
  auto result = table->Select(spec, options);
  if (!result.ok()) return -1;
  return std::get<int64_t>(result->rows[0].fields[0]);
}

}  // namespace

int main() {
  core::StreamLake lake;
  format::Schema schema{{"order_id", format::DataType::kInt64},
                        {"status", format::DataType::kString},
                        {"ts", format::DataType::kInt64}};
  auto created = lake.lakehouse().CreateTable("orders", schema,
                                              table::PartitionSpec::None());
  if (!created.ok()) return 1;
  table::Table* orders = *created;

  // Day 1: first batch lands.
  SL_CHECK_OK(orders->Insert({Order(1, "created", 100), Order(2, "created", 101)}));
  int64_t day1 = static_cast<int64_t>(lake.clock().NowSeconds());
  std::printf("day 1: %lld orders\n", static_cast<long long>(CountRows(orders)));

  // Day 2: more orders; one is updated, one deleted.
  lake.clock().Advance(86400 * sim::kSecond);
  SL_CHECK_OK(orders->Insert({Order(3, "created", 200), Order(4, "created", 201)}));
  SL_CHECK_OK(orders->Update(
      query::Conjunction{query::Predicate::Eq("order_id",
                                              format::Value(int64_t{1}))},
      "status", format::Value(std::string("shipped"))));
  SL_CHECK_OK(orders->Delete(query::Conjunction{
      query::Predicate::Eq("order_id", format::Value(int64_t{2}))}));
  std::printf("day 2: %lld orders after update+delete\n",
              static_cast<long long>(CountRows(orders)));

  // Time travel: the table exactly as it looked on day 1 — this is how a
  // failed downstream job re-reads its input ("when a job needs to re-run,
  // it can use time travel to retrieve its input data").
  table::SelectOptions day1_view;
  day1_view.as_of_timestamp = day1;
  std::printf("time travel to day 1: %lld orders (order 2 still present)\n",
              static_cast<long long>(CountRows(orders, day1_view)));

  query::QuerySpec status_of_1;
  status_of_1.where.Add(query::Predicate::Eq("order_id",
                                             format::Value(int64_t{1})));
  status_of_1.projection = {"status"};
  auto then = orders->Select(status_of_1, day1_view);
  auto now = orders->Select(status_of_1);
  std::printf("order 1 status: day1='%s', now='%s'\n",
              std::get<std::string>(then->rows[0].fields[0]).c_str(),
              std::get<std::string>(now->rows[0].fields[0]).c_str());

  // Drop table soft: unregistered, but the data survives for restoration.
  SL_CHECK_OK(lake.lakehouse().DropTableSoft("orders"));
  std::printf("after drop soft: GetTable -> %s\n",
              lake.lakehouse().GetTable("orders").status().ToString().c_str());
  auto restored = lake.lakehouse().RestoreTable("orders");
  if (!restored.ok()) return 1;
  std::printf("after restore: %lld orders\n",
              static_cast<long long>(CountRows(*restored)));

  // Snapshot expiration bounds how far back time travel goes.
  SL_CHECK_OK((*restored)->ExpireSnapshots(day1 + 1));
  auto expired = (*restored)->Select(status_of_1, day1_view);
  std::printf("time travel after expiration: %s\n",
              expired.ok() ? "still available (unexpected)"
                           : expired.status().ToString().c_str());
  return 0;
}
