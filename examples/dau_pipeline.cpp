// The real-world analytic pipeline of Fig. 12 at miniature scale:
// collection -> normalization -> labeling -> query, run twice —
// once on StreamLake (one copy, stream-to-table conversion, pushdown)
// and once on the Kafka + HDFS baseline (a new full copy after each ETL
// stage). Prints a Table-I-style comparison of storage and batch time.
//
// Run: ./build/examples/dau_pipeline [num_packets]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/mini_hdfs.h"
#include "baselines/mini_kafka.h"
#include "core/streamlake.h"
#include "format/row_codec.h"
#include "workload/dpi_log.h"

using namespace streamlake;

namespace {

// ---- StreamLake pipeline: single copy + conversion + pushdown ----
double RunStreamLakePipeline(int packets, uint64_t* storage_bytes) {
  core::StreamLake lake;
  streaming::TopicConfig config;
  config.stream_num = 3;
  config.convert_2_table.enabled = true;
  config.convert_2_table.table_schema = workload::DpiLogGenerator::Schema();
  config.convert_2_table.table_path = "dpi";
  config.convert_2_table.partition_spec =
      table::PartitionSpec::Identity("province");
  config.convert_2_table.split_offset = 1;
  config.convert_2_table.delete_msg = true;
  SL_CHECK_OK(lake.dispatcher().CreateTopic("collect", config));

  workload::DpiLogGenerator gen;
  auto producer = lake.NewProducer();
  // (a) Collection: packets land as stream messages.
  for (int i = 0; i < packets; ++i) {
    SL_CHECK_OK(producer.Send("collect", gen.NextMessage()));
  }
  double start = lake.clock().NowSeconds();
  // (b+c) Normalization + labeling happen on conversion: one table copy.
  auto converted = lake.converter().Run("collect");
  if (!converted.ok()) return -1;
  // (d) Query: the DAU aggregation, pushed down.
  auto table = lake.lakehouse().GetTable("dpi");
  query::QuerySpec dau;
  dau.where.Add(query::Predicate::Eq(
      "url",
      format::Value(std::string(workload::DpiLogGenerator::FinAppUrl()))));
  dau.group_by = {"province"};
  dau.aggregates = {query::AggregateSpec::CountStar("DAU")};
  auto result = (*table)->Select(dau);
  if (!result.ok()) return -1;
  *storage_bytes = lake.ssd_pool().AggregateStats().bytes_written +
                   lake.hdd_pool().AggregateStats().bytes_written;
  return lake.clock().NowSeconds() - start;
}

// ---- Baseline pipeline: Kafka for streaming, HDFS copy per stage ----
double RunBaselinePipeline(int packets, uint64_t* storage_bytes) {
  sim::SimClock clock;
  storage::StoragePool pool("hdd", sim::MediaType::kNvmeSsd, &clock);
  pool.AddCluster(3, 4, 64ULL << 30);
  baselines::MiniKafka kafka(&pool);
  baselines::MiniHdfs hdfs(&pool);
  SL_CHECK_OK(kafka.CreateTopic("collect", 3));

  workload::DpiLogGenerator gen;
  format::Schema schema = workload::DpiLogGenerator::Schema();
  // (a) Collection into Kafka.
  std::vector<format::Row> rows;
  for (int i = 0; i < packets; ++i) {
    streaming::Message msg = gen.NextMessage();
    SL_CHECK_OK(kafka.Produce("collect", msg));
    rows.push_back(*format::DecodeRow(schema, ByteView(msg.value)));
  }
  double start = clock.NowSeconds();
  // Stages (b), (c), (d): "a new copy of all data is written to HDFS ...
  // after each job" — serialize the full dataset per stage.
  for (int stage = 0; stage < 3; ++stage) {
    Bytes blob;
    for (const format::Row& row : rows) format::EncodeRow(schema, row, &blob);
    SL_CHECK_OK(hdfs.WriteFile("/etl/stage-" + std::to_string(stage), ByteView(blob)));
  }
  // (d) Query: read the final stage fully (no pushdown) and aggregate.
  auto data = hdfs.ReadFile("/etl/stage-2");
  if (!data.ok()) return -1;
  Decoder dec{ByteView(*data)};
  std::map<std::string, int64_t> dau;
  while (dec.Remaining() > 0) {
    auto row = format::DecodeRow(schema, &dec);
    if (!row.ok()) break;
    if (std::get<std::string>(row->fields[0]) ==
        workload::DpiLogGenerator::FinAppUrl()) {
      dau[std::get<std::string>(row->fields[2])]++;
    }
  }
  *storage_bytes = pool.AggregateStats().bytes_written;
  return clock.NowSeconds() - start;
}

}  // namespace

int main(int argc, char** argv) {
  int packets = argc > 1 ? std::atoi(argv[1]) : 20000;
  std::printf("Fig. 12 pipeline with %d packets (~%.1f MB of logs)\n\n",
              packets, packets * 1.2 / 1024);

  uint64_t lake_bytes = 0, baseline_bytes = 0;
  double lake_time = RunStreamLakePipeline(packets, &lake_bytes);
  double baseline_time = RunBaselinePipeline(packets, &baseline_bytes);
  if (lake_time < 0 || baseline_time < 0) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }
  std::printf("%-22s %14s %18s\n", "", "StreamLake", "HDFS + Kafka");
  std::printf("%-22s %11.1f MB %15.1f MB\n", "storage written",
              lake_bytes / 1048576.0, baseline_bytes / 1048576.0);
  std::printf("%-22s %11.2f s  %15.2f s\n", "pipeline time (sim)", lake_time,
              baseline_time);
  std::printf("%-22s %13.2fx\n", "storage ratio (HK/S)",
              static_cast<double>(baseline_bytes) / lake_bytes);
  return 0;
}
