// LakeBrain, the storage-side optimizer (Section VI), hands-on:
//   1. train the DQN auto-compaction agent on a live ingestion workload
//      and watch it learn to compact cold fragmented partitions while
//      skipping the ingestion-hot one;
//   2. learn an SPN cardinality estimator from a data sample and build a
//      predicate-aware QD-tree partitioning from a query workload.
//
// Run: ./build/examples/lakebrain_demo

#include <cstdio>
#include <set>

#include "core/streamlake.h"
#include "lakebrain/compaction.h"
#include "lakebrain/qdtree.h"
#include "workload/tpch.h"

using namespace streamlake;

int main() {
  // ---------------- Part 1: RL auto-compaction ----------------
  std::printf("=== LakeBrain auto-compaction ===\n");
  lakebrain::AutoCompactionAgent::Options agent_options;
  agent_options.block_size = 32 << 10;
  agent_options.dqn.epsilon_decay_steps = 1500;
  lakebrain::AutoCompactionAgent agent(agent_options);

  lakebrain::GlobalFeatures global;
  global.target_file_bytes = 256 << 10;
  global.ingestion_files_per_sec = 2;

  uint64_t compactions = 0, conflicts = 0, skips = 0;
  table::Table* table = nullptr;
  // Episodic training: each episode is a fresh table ingesting a stream
  // (fragmentation keeps recurring, so the agent sees the whole state
  // space, like the paper's 3.5-hour training workload).
  for (int episode = 0; episode < 5; ++episode) {
    core::StreamLakeOptions options;
    options.table_options.target_file_bytes = 256 << 10;
    auto* lake = new core::StreamLake(options);  // leak: demo-lifetime only
    auto created = lake->lakehouse().CreateTable(
        "events", workload::TpchLineitemGenerator::Schema(),
        table::PartitionSpec::Day("l_shipdate"));
    if (!created.ok()) return 1;
    table = *created;
    workload::TpchLineitemGenerator gen(
        workload::TpchOptions{.seed = 7 + static_cast<uint64_t>(episode)});
    Random analytics_rng(9 + episode);
    Random rng(episode + 1);

    for (int round = 0; round < 120; ++round) {
      // Time-ordered ingestion: the hot day advances every 15 rounds.
      int hot_day = (round / 15) % 8;
      std::vector<format::Row> batch;
      for (int i = 0; i < 60; ++i) {
        format::Row row = gen.NextRow();
        int day = rng.OneIn(10) ? (hot_day + 7) % 8 : hot_day;
        row.fields[5] =
            format::Value(workload::TpchLineitemGenerator::kShipDateMin +
                          int64_t{day} * 86400);
        batch.push_back(std::move(row));
      }
      uint64_t plan = (*table->Info()).current_snapshot_id;
      if (!table->Insert(batch).ok()) return 1;

      auto files = *table->LiveFiles();
      std::set<std::string> partitions;
      for (const auto& f : files) partitions.insert(f.partition);
      std::string hot_partition =
          "day=" + std::to_string(
                       (workload::TpchLineitemGenerator::kShipDateMin +
                        int64_t{hot_day} * 86400) /
                       86400);
      for (const std::string& partition : partitions) {
        double access = partition == hot_partition ? 1.0 : 0.05;
        auto decision = agent.Step(table, partition, global, access, plan);
        if (!decision.ok()) return 1;
        if (decision->succeeded) ++compactions;
        if (decision->conflicted) ++conflicts;
        if (!decision->attempted) ++skips;
      }
      // Concurrent analytics (also feeds the table's access statistics).
      if (round % 25 == 24) {
        query::QuerySpec spec;
        spec.where.Add(query::Predicate::Le(
            "l_quantity",
            format::Value(static_cast<int64_t>(10 + analytics_rng.Uniform(40)))));
        spec.aggregates = {query::AggregateSpec::CountStar()};
        if (!table->Select(spec).ok()) return 1;
      }
    }
  }
  std::printf("training: %llu compactions, %llu conflicts, %llu skips "
              "(%zu replay transitions, epsilon %.2f)\n",
              static_cast<unsigned long long>(compactions),
              static_cast<unsigned long long>(conflicts),
              static_cast<unsigned long long>(skips),
              agent.agent().replay_size(), agent.agent().epsilon());

  // What did it learn? Q-values for a fragmented-cold vs hot partition.
  lakebrain::PartitionFeatures fragmented;
  fragmented.file_count = 25;
  fragmented.small_file_count = 25;
  fragmented.access_frequency = 0.05;
  fragmented.partition_utilization = 0.05;
  lakebrain::PartitionFeatures hot = fragmented;
  hot.access_frequency = 1.0;
  auto q_cold = agent.agent().QValues(
      lakebrain::BuildStateVector(global, fragmented));
  auto q_hot = agent.agent().QValues(lakebrain::BuildStateVector(global, hot));
  std::printf("learned policy: fragmented-cold partition -> %s "
              "(Q: skip %.3f, compact %.3f)\n",
              q_cold[1] > q_cold[0] ? "COMPACT" : "skip", q_cold[0], q_cold[1]);
  std::printf("               ingestion-hot partition  -> %s "
              "(Q: skip %.3f, compact %.3f)\n",
              q_hot[1] > q_hot[0] ? "COMPACT" : "skip", q_hot[0], q_hot[1]);
  std::printf("(the hot partition's compaction penalty — conflict risk — is "
              "what the agent learned to avoid)\n");
  std::printf("partition access counts observed by the table: %zu partitions "
              "tracked\n\n",
              table->PartitionAccessCounts().size());

  // ---------------- Part 2: SPN + QD-tree partitioning ----------------
  std::printf("=== LakeBrain predicate-aware partitioning ===\n");
  workload::TpchOptions tpch;
  tpch.rows_per_sf = 20000;
  workload::TpchLineitemGenerator lineitem(tpch);
  std::vector<format::Row> rows = lineitem.GenerateAll();
  format::Schema schema = workload::TpchLineitemGenerator::Schema();

  auto spn = lakebrain::SumProductNetwork::Train(schema, rows);
  if (!spn.ok()) return 1;
  query::Conjunction probe{
      query::Predicate::Le("l_quantity", format::Value(int64_t{10}))};
  std::printf("SPN (%zu nodes): P(l_quantity <= 10) ~= %.3f (truth 0.20)\n",
              spn->num_nodes(), spn->EstimateSelectivity(probe));

  workload::TpchQueryGenerator queries(3);
  std::vector<query::Conjunction> workload_predicates;
  for (const auto& spec : queries.Generate(50)) {
    workload_predicates.push_back(spec.where);
  }
  auto tree = lakebrain::QdTree::Build(schema, workload_predicates, *spn,
                                       rows.size());
  if (!tree.ok()) return 1;
  std::printf("QD-tree: %zu partitions built from 50 workload queries\n",
              tree->num_leaves());
  // How much would a fresh query skip?
  query::QuerySpec fresh = queries.NextQuery();
  auto matching = tree->MatchingLeaves(fresh.where);
  uint64_t scanned = 0, total = 0;
  for (size_t leaf = 0; leaf < tree->num_leaves(); ++leaf) {
    total += tree->leaf_cardinalities()[leaf];
  }
  for (int leaf : matching) scanned += tree->leaf_cardinalities()[leaf];
  std::printf("query '%s':\n  reads %zu of %zu partitions (~%.0f%% of rows "
              "skipped)\n",
              fresh.where.ToString().c_str(), matching.size(),
              tree->num_leaves(),
              total == 0 ? 0.0 : 100.0 * (total - scanned) / total);
  return 0;
}
