// The data access layer and enterprise resilience features (Section III):
// one piece of data reached through S3, NAS, and block protocols, guarded
// by authentication + ACLs; then disk failure -> data reconstruction, and
// remote-site replication -> disaster recovery.
//
// Run: ./build/examples/multi_protocol

#include <cstdio>

#include "access/access_control.h"
#include "access/block_service.h"
#include "access/nas_service.h"
#include "access/s3_gateway.h"
#include "core/streamlake.h"
#include "storage/repair.h"
#include "storage/replication.h"

using namespace streamlake;

int main() {
  core::StreamLake lake;
  access::AccessController acl;

  // --- Principals and ACLs ---
  std::string admin = acl.CreatePrincipal("admin");
  std::string analyst = acl.CreatePrincipal("analyst");
  SL_CHECK_OK(acl.Grant("admin", "/", access::Permission::kAdmin));
  SL_CHECK_OK(acl.Grant("analyst", "/s3/reports/", access::Permission::kRead));

  // --- S3 protocol ---
  access::S3Gateway s3(&lake.objects(), &acl, &lake.data_bus());
  SL_CHECK_OK(s3.CreateBucket(admin, "reports"));
  SL_CHECK_OK(s3.PutObject(admin, "reports", "q2.csv", ByteView("region,revenue\ncn,42\n")));
  auto fetched = s3.GetObject(analyst, "reports", "q2.csv");
  std::printf("S3: analyst reads %zu bytes from s3://reports/q2.csv\n",
              fetched.ok() ? fetched->size() : 0);
  auto denied = s3.PutObject(analyst, "reports", "q2.csv", ByteView("tamper"));
  std::printf("S3: analyst write denied as expected: %s\n",
              denied.ToString().c_str());

  // --- NAS protocol over the same object namespace ---
  access::NasService nas(&lake.objects(), &acl, &lake.clock());
  SL_CHECK_OK(nas.MakeDirectory(admin, "/shared"));
  auto handle = nas.Open(admin, "/shared/notes.txt", /*for_write=*/true);
  SL_CHECK_OK(nas.WriteAt(*handle, 0, ByteView("mounted via NFS\n")));
  SL_CHECK_OK(nas.Close(*handle));
  auto attrs = nas.GetAttributes(admin, "/shared/notes.txt");
  std::printf("NAS: /shared/notes.txt is %llu bytes\n",
              static_cast<unsigned long long>(attrs->size));

  // --- Block protocol (iSCSI LUN, thin-provisioned) ---
  access::BlockService blocks(&lake.ssd_pool(), &acl);
  auto lun = blocks.CreateVolume(admin, 256ULL << 20);
  SL_CHECK_OK(blocks.Write(admin, *lun, 4096, ByteView("raw database pages")));
  auto sector = blocks.Read(admin, *lun, 4096, 18);
  std::printf("Block: LUN %llu read back '%s'; %llu bytes provisioned of "
              "256 MB\n",
              static_cast<unsigned long long>(*lun),
              BytesToString(*sector).c_str(),
              static_cast<unsigned long long>(
                  *blocks.AllocatedBytes(admin, *lun)));

  // --- Disk failure -> data reconstruction ---
  lake.ssd_pool().SetNodeFailed(0, true);
  auto still_readable = s3.GetObject(admin, "reports", "q2.csv");
  std::printf("Failure: node 0 down, object still readable: %s\n",
              still_readable.ok() ? "yes" : "no");
  auto repaired = lake.repair().Run();
  std::printf("Repair: %llu degraded PLogs rebuilt onto healthy disks\n",
              static_cast<unsigned long long>(repaired->plogs_repaired));
  lake.ssd_pool().SetNodeFailed(0, false);

  // --- Remote replication + disaster recovery ---
  core::StreamLake remote_site;
  kv::KvStore repl_state;
  sim::NetworkModel wan(sim::NetworkProfile::Tcp(), &lake.clock());
  storage::RemoteReplicationService replication(&lake.objects(),
                                                &remote_site.objects(), &wan,
                                                &repl_state);
  auto shipped = replication.Replicate("/s3/reports/");
  std::printf("Replication: %llu objects (%llu bytes) mirrored to site B\n",
              static_cast<unsigned long long>(shipped->objects_shipped),
              static_cast<unsigned long long>(shipped->bytes_shipped));
  SL_CHECK_OK(s3.DeleteObject(admin, "reports", "q2.csv"));
  SL_CHECK_OK(replication.RestoreObject("/s3/reports/q2.csv"));
  auto restored = s3.GetObject(admin, "reports", "q2.csv");
  std::printf("Disaster recovery: object restored from site B (%zu bytes)\n",
              restored.ok() ? restored->size() : 0);
  return 0;
}
