// Quickstart: bring up a StreamLake cluster, publish log messages, convert
// the stream to a table object, and run the paper's DAU query (Fig. 13)
// with computation pushdown.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/streamlake.h"
#include "sql/engine.h"
#include "workload/dpi_log.h"

using namespace streamlake;

int main() {
  // 1. A 3-node StreamLake cluster (simulated OceanStor substrate).
  core::StreamLake lake;

  // 2. Declare a topic whose messages auto-convert to a table object
  //    (the convert_2_table block of Fig. 8).
  streaming::TopicConfig config;
  config.stream_num = 3;
  config.convert_2_table.enabled = true;
  config.convert_2_table.table_schema = workload::DpiLogGenerator::Schema();
  config.convert_2_table.table_path = "dpi_logs";
  config.convert_2_table.partition_spec =
      table::PartitionSpec::Identity("province");
  config.convert_2_table.split_offset = 1000;
  config.convert_2_table.delete_msg = true;  // keep ONE copy of the data
  if (!lake.dispatcher().CreateTopic("topic_streamlake_test", config).ok()) {
    std::fprintf(stderr, "failed to create topic\n");
    return 1;
  }

  // 3. Produce messages (Fig. 7's producer API).
  workload::DpiLogGenerator gen;
  auto producer = lake.NewProducer();
  for (int i = 0; i < 5000; ++i) {
    auto offset = producer.Send("topic_streamlake_test", gen.NextMessage());
    if (!offset.ok()) {
      std::fprintf(stderr, "send failed: %s\n",
                   offset.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("produced 5000 messages\n");

  // 4. The background conversion service turns the stream into a table.
  auto converted = lake.converter().Run("topic_streamlake_test");
  if (!converted.ok()) {
    std::fprintf(stderr, "conversion failed: %s\n",
                 converted.status().ToString().c_str());
    return 1;
  }
  std::printf("converted %llu records into table '%s' (stream copy trimmed)\n",
              static_cast<unsigned long long>(converted->converted_records),
              converted->table_name.c_str());

  // 5. Query it with the Fig. 13 SQL, pushed down into storage.
  sql::Engine engine(&lake.lakehouse());
  table::SelectMetrics metrics;
  auto result = engine.Execute(
      "SELECT COUNT(*) AS DAU "
      "FROM dpi_logs "
      "WHERE url = 'http://streamlake_fin_app.com' "
      "GROUP BY province "
      "ORDER BY DAU DESC",
      &metrics);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%-16s %s\n", "province", "DAU");
  for (const format::Row& row : result->rows) {
    std::printf("%-16s %lld\n",
                std::get<std::string>(row.fields[0]).c_str(),
                static_cast<long long>(std::get<int64_t>(row.fields[1])));
  }
  std::printf(
      "\nfiles scanned=%llu skipped=%llu | bytes to compute=%llu "
      "(pushdown) | simulated query time=%.2f ms\n",
      static_cast<unsigned long long>(metrics.files_scanned),
      static_cast<unsigned long long>(metrics.files_skipped),
      static_cast<unsigned long long>(metrics.bytes_to_compute),
      metrics.elapsed_ns / 1e6);
  return 0;
}
