// Streaming ETL with enterprise features: exactly-once transactional
// produce (2PC), elastic scaling of stream workers and partitions without
// data migration, columnar archiving, and SSD->HDD tiering.
//
// Run: ./build/examples/streaming_etl

#include <cstdio>

#include "core/streamlake.h"
#include "workload/dpi_log.h"

using namespace streamlake;

int main() {
  core::StreamLakeOptions options;
  options.tiering_policy.cold_after_ns = 60 * sim::kSecond;
  options.plog.plog.capacity = 4 << 20;
  core::StreamLake lake(options);

  streaming::TopicConfig config;
  config.stream_num = 4;
  config.archive.enabled = true;
  config.archive.archive_size_mb = 0;  // archive eagerly for the demo
  config.archive.row_2_col = true;
  if (!lake.dispatcher().CreateTopic("payments", config).ok()) return 1;

  // --- Exactly-once produce: all-or-nothing batches via 2PC ---
  auto txns = lake.NewTransactionManager();
  workload::DpiLogGenerator gen;
  int committed = 0, aborted = 0;
  for (int batch = 0; batch < 20; ++batch) {
    auto txn = txns.Begin();
    if (!txn.ok()) return 1;
    for (int i = 0; i < 100; ++i) {
      SL_CHECK_OK(txns.Send(*txn, "payments", gen.NextMessage()));
    }
    if (batch % 5 == 4) {
      SL_CHECK_OK(txns.Abort(*txn));  // e.g. an upstream validation failed
      ++aborted;
    } else {
      if (!txns.Commit(*txn).ok()) return 1;
      ++committed;
    }
  }
  std::printf("transactions: %d committed, %d aborted\n", committed, aborted);

  auto consumer = lake.NewConsumer("etl");
  if (!consumer.Subscribe("payments").ok()) return 1;
  auto polled = consumer.Poll(100000);
  std::printf("consumer sees %zu messages (only committed batches: %d)\n",
              polled->size(), committed * 100);

  // --- Elastic scaling: metadata-only, measured on the simulated clock ---
  uint64_t before_ns = lake.clock().NowNanos();
  SL_CHECK_OK(lake.dispatcher().ResizeWorkers(12));
  SL_CHECK_OK(lake.dispatcher().AddStreams("payments", 60));
  uint64_t scale_ns = lake.clock().NowNanos() - before_ns;
  std::printf("scaled 4->64 partitions, 3->12 workers in %.3f simulated ms "
              "(no data migration)\n", scale_ns / 1e6);

  // --- Columnar archive ---
  auto archived = lake.archive().Run("payments", /*force=*/true);
  if (!archived.ok()) return 1;
  std::printf("archived %llu records: %.1f KB raw -> %.1f KB columnar "
              "(%.1fx smaller)\n",
              static_cast<unsigned long long>(archived->archived_records),
              archived->source_bytes / 1024.0,
              archived->archived_bytes / 1024.0,
              static_cast<double>(archived->source_bytes) /
                  archived->archived_bytes);

  // --- Tiering: cold PLogs sink to the HDD pool ---
  lake.clock().Advance(3600 * sim::kSecond);
  if (!lake.RunBackgroundWork().ok()) return 1;
  std::printf("after tiering: ssd=%.1f MB, hdd=%.1f MB allocated\n",
              lake.ssd_pool().AllocatedBytes() / 1048576.0,
              lake.hdd_pool().AllocatedBytes() / 1048576.0);

  std::printf("\n--- cluster report ---\n%s",
              lake.Report().ToString().c_str());
  return 0;
}
